"""Section 4 / Figure 23 last three rows: cumulative aggregates.

Three claims are regenerated:

1. (§4.1 vs §4.2) dual SB-trees answer cumulative SUM/COUNT/AVG for
   *any* window offset with the same O(log n) lookup cost as a dedicated
   fixed-window tree -- at roughly 2-3x the constant (two trees, three
   lookups).
2. (§4.3) a cumulative MIN/MAX lookup via a plain SB-tree ``rangeq``
   costs O(h + r): it grows with the window offset.  The MSB-tree's
   ``mlookup`` costs O(h) regardless of the offset -- the wider the
   window, the bigger the win.
3. All routes agree with the brute-force oracle (asserted).
"""

import pytest

from repro import DualTreeAggregate, FixedWindowTree, Interval, MSBTree, SBTree
from repro.benchlib import Series, geometric_sizes, scaled, time_call
from repro.core import reference
from repro.workloads import uniform

N = scaled(2000)
HORIZON = N * 10
FACTS = uniform(N, horizon=HORIZON, max_duration=150, value_range=(1, 50), seed=31)
PROBES = [HORIZON * i // 50 for i in range(1, 50)]


def test_dual_tree_vs_fixed_window_lookup(report):
    """Claim 1: any-offset lookups cost a small constant more."""
    offsets = [0, 100, 1000, 10_000]
    fixed_trees = {
        w: FixedWindowTree("avg", window=w, branching=32, leaf_capacity=32)
        for w in offsets
    }
    dual = DualTreeAggregate("avg", branching=32, leaf_capacity=32)
    for value, interval in FACTS:
        dual.insert(value, interval)
        for tree in fixed_trees.values():
            tree.insert(value, interval)

    series = Series("w", offsets)
    fixed_times, dual_times = [], []
    for w in offsets:
        fixed_times.append(
            time_call(lambda: [fixed_trees[w].lookup(t) for t in PROBES], repeat=3)
            / len(PROBES)
        )
        dual_times.append(
            time_call(lambda: [dual.window_lookup(t, w) for t in PROBES], repeat=3)
            / len(PROBES)
        )
        for t in PROBES:
            expected = reference.cumulative_value(FACTS, "avg", t, w)
            assert fixed_trees[w].lookup(t) == expected
            assert dual.window_lookup(t, w) == expected
    series.add("fixed-window s/lookup", fixed_times)
    series.add("dual-tree s/lookup", dual_times)
    series.add(
        "dual/fixed ratio",
        [d / f if f else 0.0 for d, f in zip(dual_times, fixed_times)],
    )
    report(
        "Section 4.2 / dual trees vs dedicated fixed-window trees",
        series.render(with_exponents=False),
        series=series,
    )
    # A small constant factor, not asymptotic: every ratio stays modest.
    assert all(r < 12 for r in series.columns["dual/fixed ratio"])


def _rangeq_window_max(tree: SBTree, t, w):
    """Cumulative MAX via a plain SB-tree range scan (the §4.3 strawman)."""
    best = None
    # The closed window [t-w, t]: scan [t-w, t) and add the instant t.
    for value, _ in tree.range_query(Interval(t - w, t + 1)):
        if best is None or (value is not None and value > best):
            best = value
    return best


def test_msb_mlookup_beats_rangeq_for_wide_windows(report):
    """Claim 2: O(h) mlookup vs O(h + r) rangeq as the window grows."""
    sb = SBTree("max", branching=32, leaf_capacity=32)
    msb = MSBTree("max", branching=32, leaf_capacity=32)
    for value, interval in FACTS:
        sb.insert(value, interval)
        msb.insert(value, interval)

    offsets = [100, 1000, 10_000, HORIZON]
    series = Series("w", offsets)
    rq_times, ml_times, rq_reads, ml_reads = [], [], [], []
    for w in offsets:
        for t in PROBES[::5]:
            assert msb.window_lookup(t, w) == _rangeq_window_max(sb, t, w)
        rq_times.append(
            time_call(lambda: [_rangeq_window_max(sb, t, w) for t in PROBES])
            / len(PROBES)
        )
        ml_times.append(
            time_call(lambda: [msb.window_lookup(t, w) for t in PROBES])
            / len(PROBES)
        )
        snapshot = sb.store.stats.snapshot()
        for t in PROBES:
            _rangeq_window_max(sb, t, w)
        rq_reads.append((sb.store.stats - snapshot).reads / len(PROBES))
        snapshot = msb.store.stats.snapshot()
        for t in PROBES:
            msb.window_lookup(t, w)
        ml_reads.append((msb.store.stats - snapshot).reads / len(PROBES))
    series.add("rangeq s/lookup", rq_times)
    series.add("mlookup s/lookup", ml_times)
    series.add("rangeq node reads", rq_reads)
    series.add("mlookup node reads", ml_reads)
    report("Section 4.3 / MSB-tree mlookup vs SB-tree rangeq", series.render(), series=series)
    # rangeq cost grows with the window; mlookup stays flat and wins big
    # at the widest window.
    assert rq_reads[-1] > 3 * rq_reads[0]
    assert series.exponent("mlookup node reads") < 0.25
    assert rq_reads[-1] > 5 * ml_reads[-1]


def test_cumulative_maintenance_cost(report):
    """Updates: a dual-tree pair costs ~2x one tree, an MSB ~1x."""
    series = Series("n", geometric_sizes(scaled(250), 4))
    single_t, dual_t, msb_t = [], [], []
    for n in series.xs:
        facts = uniform(n, horizon=n * 10, max_duration=150, seed=37)
        single = SBTree("sum", branching=32, leaf_capacity=32)
        dual = DualTreeAggregate("sum", branching=32, leaf_capacity=32)
        msb = MSBTree("max", branching=32, leaf_capacity=32)
        single_t.append(
            time_call(lambda: [single.insert(v, i) for v, i in facts]) / n
        )
        dual_t.append(time_call(lambda: [dual.insert(v, i) for v, i in facts]) / n)
        msb_t.append(time_call(lambda: [msb.insert(v, i) for v, i in facts]) / n)
    series.add("SB-tree s/insert", single_t)
    series.add("dual-trees s/insert", dual_t)
    series.add("MSB-tree s/insert", msb_t)
    report("Section 4 / cumulative maintenance cost per insert", series.render(), series=series)
    # All stay ~O(log n): no column's exponent approaches linear.
    for column in series.columns:
        assert series.exponent(column) < 0.5, column


@pytest.mark.parametrize("route", ["fixed", "dual"])
def test_benchmark_cumulative_sum_lookup(benchmark, route):
    w = 1000
    if route == "fixed":
        index = FixedWindowTree("sum", window=w, branching=32, leaf_capacity=32)
        for value, interval in FACTS:
            index.insert(value, interval)
        benchmark(index.lookup, HORIZON // 2)
    else:
        index = DualTreeAggregate("sum", branching=32, leaf_capacity=32)
        for value, interval in FACTS:
            index.insert(value, interval)
        benchmark(index.window_lookup, HORIZON // 2, w)


@pytest.mark.parametrize("route", ["mlookup", "rangeq"])
def test_benchmark_cumulative_max_lookup(benchmark, route):
    w = 10_000
    if route == "mlookup":
        msb = MSBTree("max", branching=32, leaf_capacity=32)
        for value, interval in FACTS:
            msb.insert(value, interval)
        benchmark(msb.window_lookup, HORIZON // 2, w)
    else:
        sb = SBTree("max", branching=32, leaf_capacity=32)
        for value, interval in FACTS:
            sb.insert(value, interval)
        benchmark(_rangeq_window_max, sb, HORIZON // 2, w)
