"""Observability overhead: the disabled fast path must be ~free.

The per-operation accounting layer (:mod:`repro.obs`) wraps every public
tree operation.  Its contract is that when collection is disabled (the
default) the wrapper adds a single module-flag check per call, so the
library costs the same whether or not anyone ever looks at the metrics.
This benchmark measures three variants of a warm paged-SB-tree lookup
loop:

* ``raw``      -- the undecorated method (``lookup.__wrapped__``),
* ``disabled`` -- through the wrapper with collection off (the default),
* ``enabled``  -- through the wrapper with a live registry.

and asserts the disabled overhead stays under the 5% acceptance bound.
The enabled overhead is reported for information: it pays for two
counter snapshots, an :class:`~repro.obs.OpRecord`, and registry folds.
"""

import pytest

from repro import SBTree, obs
from repro.benchlib import format_table, scaled, time_call
from repro.storage import PagedNodeStore
from repro.workloads import uniform

N = scaled(1200)
HORIZON = 50_000
LOOKUPS = scaled(3000)
REPEAT = 5


def _warm_tree(path):
    store = PagedNodeStore(str(path), "sum", buffer_capacity=256)
    tree = SBTree(
        "sum",
        store,
        branching=min(32, store.default_branching),
        leaf_capacity=min(32, store.default_leaf_capacity),
    )
    for value, interval in uniform(N, horizon=HORIZON, max_duration=300, seed=17):
        tree.insert(value, interval)
    store.flush()
    for i in range(200):  # warm the buffer pool before timing
        tree.lookup(HORIZON * i // 200)
    return store, tree


def test_disabled_overhead_under_five_percent(report, tmp_path):
    assert not obs.is_enabled(), "collection must be off by default"
    store, tree = _warm_tree(tmp_path / "obs_overhead.sbt")
    probes = [HORIZON * i // LOOKUPS for i in range(LOOKUPS)]
    raw_lookup = SBTree.lookup.__wrapped__

    def run_raw():
        for t in probes:
            raw_lookup(tree, t)

    def run_wrapped():
        for t in probes:
            tree.lookup(t)

    raw = time_call(run_raw, repeat=REPEAT)
    disabled = time_call(run_wrapped, repeat=REPEAT)
    with obs.collecting() as registry:
        enabled = time_call(run_wrapped, repeat=REPEAT)
    assert not obs.is_enabled()

    disabled_overhead = disabled / raw - 1.0
    enabled_overhead = enabled / raw - 1.0
    per_lookup_us = disabled * 1e6 / LOOKUPS
    report(
        "Observability / lookup overhead (warm paged SB-tree)",
        format_table(
            ["variant", "seconds", "overhead vs raw"],
            [
                ("raw (__wrapped__)", raw, "-"),
                ("wrapper, disabled", disabled, f"{disabled_overhead:+.2%}"),
                ("wrapper, enabled", enabled, f"{enabled_overhead:+.2%}"),
            ],
        )
        + f"\nlookups={LOOKUPS}  ~{per_lookup_us:.1f}us per disabled lookup",
    )
    store.close()

    # The enabled run must actually have recorded every lookup...
    summary = registry.op_summary("lookup")
    assert summary["count"] == LOOKUPS * REPEAT
    # ...and the disabled fast path must stay within the acceptance bound.
    assert disabled_overhead < 0.05, (
        f"disabled observability overhead {disabled_overhead:.2%} >= 5%"
    )
