"""Figure 23, "update time" and "lookup time" columns.

The paper claims the SB-tree is the only disk-capable structure with
O(log n) incremental updates *and* O(log n) lookups; the aggregation
tree [KS95] does both in O(n) worst case (ordered input), and a directly
materialized view pays O(m) row touches per update.

Deterministic witnesses back the timing series: logical node reads per
operation for the trees, rows touched for the materialized view.
"""

import pytest

from repro import Interval, SBTree
from repro.baselines import AggregationTree
from repro.benchlib import Series, geometric_sizes, scaled, time_call
from repro.warehouse import MaterializedView
from repro.workloads import ordered, uniform

SIZES = geometric_sizes(scaled(250), 4)


def _build(n, seed=21):
    """Chronologically ordered arrivals: the warehouse common case."""
    return ordered(n, k=0, gap=7, max_duration=70, seed=seed)


def _probe_updates(n):
    """A handful of fresh tuples to insert near the end of the horizon."""
    horizon = n * 7
    return [(3, Interval(horizon - 50 - 10 * i, horizon - 10 * i)) for i in range(5)]


def test_update_time_series(report):
    series = Series("n", SIZES)
    sb_times, agg_times, view_rows, sb_reads, agg_depths = [], [], [], [], []
    for n in SIZES:
        facts = _build(n)
        sb = SBTree("sum", branching=32, leaf_capacity=32)
        agg = AggregationTree("sum")
        view = MaterializedView("sum")
        for value, interval in facts:
            sb.insert(value, interval)
            agg.insert(value, interval)
            view.insert(value, interval)
        probes = _probe_updates(n)
        sb_times.append(
            time_call(lambda: [sb.insert(v, i) for v, i in probes]) / len(probes)
        )
        agg_times.append(
            time_call(lambda: [agg.insert(v, i) for v, i in probes]) / len(probes)
        )
        # One long-interval update against the materialized view: rows touched.
        before = view.rows_touched
        view.insert(1, Interval(0, n * 7))
        view_rows.append(view.rows_touched - before)
        snapshot = sb.store.stats.snapshot()
        sb.insert(1, Interval(0, n * 7))
        sb_reads.append((sb.store.stats - snapshot).reads)
        agg_depths.append(agg.depth())
    series.add("SB-tree s/update", sb_times)
    series.add("aggr-tree s/update", agg_times)
    series.add("view rows touched", view_rows)
    series.add("SB-tree node reads", sb_reads)
    series.add("aggr-tree depth", agg_depths)
    report("Figure 23 / update time", series.render(), series=series)
    # The materialized view's long-interval update cost is linear in m...
    assert series.exponent("view rows touched") > 0.8
    # ...while the SB-tree's stays logarithmic (near-flat).
    assert series.exponent("SB-tree node reads") < 0.4
    assert sb_reads[-1] < 40


def test_lookup_time_series(report):
    series = Series("n", SIZES)
    sb_times, agg_times, sb_reads, agg_steps = [], [], [], []
    for n in SIZES:
        facts = _build(n)
        sb = SBTree("sum", branching=32, leaf_capacity=32)
        agg = AggregationTree("sum")
        for value, interval in facts:
            sb.insert(value, interval)
            agg.insert(value, interval)
        instants = [i * 7 * n // 64 for i in range(64)]
        sb_times.append(time_call(lambda: [sb.lookup(t) for t in instants]) / 64)
        agg_times.append(time_call(lambda: [agg.lookup(t) for t in instants]) / 64)
        snapshot = sb.store.stats.snapshot()
        for t in instants:
            sb.lookup(t)
        sb_reads.append((sb.store.stats - snapshot).reads / 64)
        agg_steps.append(agg.depth())
    series.add("SB-tree s/lookup", sb_times)
    series.add("aggr-tree s/lookup", agg_times)
    series.add("SB-tree reads/lookup", sb_reads)
    series.add("aggr-tree worst steps", agg_steps)
    report("Figure 23 / lookup time", series.render(), series=series)
    assert series.exponent("SB-tree reads/lookup") < 0.3
    assert series.exponent("aggr-tree worst steps") > 0.8
    # Both answered correctly, of course.
    facts = _build(SIZES[-1])


@pytest.mark.parametrize(
    "structure", ["sbtree", "aggregation_tree", "materialized_view"]
)
def test_benchmark_single_update(benchmark, structure):
    """pytest-benchmark: one long-interval update at a fixed size."""
    n = scaled(1000)
    facts = _build(n)
    if structure == "sbtree":
        index = SBTree("sum", branching=32, leaf_capacity=32)
    elif structure == "aggregation_tree":
        index = AggregationTree("sum")
    else:
        index = MaterializedView("sum")
    for value, interval in facts:
        index.insert(value, interval)
    long_interval = Interval(0, n * 7)

    def update_and_undo():
        index.insert(1, long_interval)
        index.delete(1, long_interval)

    benchmark(update_and_undo)


@pytest.mark.parametrize("structure", ["sbtree", "aggregation_tree"])
def test_benchmark_lookup(benchmark, structure):
    n = scaled(1000)
    facts = _build(n)
    if structure == "sbtree":
        index = SBTree("sum", branching=32, leaf_capacity=32)
    else:
        index = AggregationTree("sum")
    for value, interval in facts:
        index.insert(value, interval)
    benchmark(index.lookup, n * 3)
