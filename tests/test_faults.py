"""Tests for the fault-injection layer (:mod:`repro.faults`) and the
pager's failure handling: retries, degraded mode, write-ahead journal
discipline, torn-record recovery, and the buffer pool's eviction path
under injected I/O errors."""

import errno
import os
import struct
import zlib

import pytest

from repro import obs
from repro.core.intervals import Interval
from repro.core.sbtree import SBTree
from repro.faults import FaultInjector, SimulatedCrash, simulate_crash
from repro.storage import (
    BufferPool,
    JournalError,
    PagedNodeStore,
    Pager,
    PagerDegradedError,
)

PAGE_SIZE = 512


def fast_pager(path, **kwargs):
    """A pager with sleeping disabled so retry tests run instantly."""
    kwargs.setdefault("page_size", PAGE_SIZE)
    kwargs.setdefault("retry_backoff", 0.0)
    return Pager(str(path), **kwargs)


def committed_pager(path, payloads, **kwargs):
    """A journaled pager with ``payloads`` committed on pages 1..n."""
    pager = fast_pager(path, journaled=True, **kwargs)
    pages = []
    for payload in payloads:
        page_id = pager.allocate_page()
        pager.write_page(page_id, payload)
        pages.append(page_id)
    pager.commit()
    return pager, pages


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_crash_fires_at_exact_hit(self):
        inj = FaultInjector().crash_at("p", hit=3)
        inj.crash_point("p")
        inj.crash_point("p")
        with pytest.raises(SimulatedCrash) as excinfo:
            inj.crash_point("p")
        assert excinfo.value.point == "p"
        assert inj.hits["p"] == 3
        assert inj.injected["crash"] == 1
        # The charge is spent: the point is passable afterwards.
        inj.crash_point("p")
        assert inj.hits["p"] == 4

    def test_hit_numbers_are_one_based(self):
        with pytest.raises(ValueError):
            FaultInjector().crash_at("p", hit=0)

    def test_disarm_counts_without_firing(self):
        inj = FaultInjector().crash_at("p", hit=1).disarm()
        inj.crash_point("p")
        inj.crash_point("p")
        assert inj.hits["p"] == 2
        assert inj.injected == {}
        inj.rearm()
        # The armed hit number (1) is already past: no crash.
        inj.crash_point("p")

    def test_transient_write_fault_exhausts(self):
        inj = FaultInjector().fail_writes("data", times=2, errno_=errno.EIO)
        for _ in range(2):
            with pytest.raises(OSError) as excinfo:
                inj.intercept_write("data", b"x")
            assert excinfo.value.errno == errno.EIO
        data, crash = inj.intercept_write("data", b"x")
        assert (data, crash) == (b"x", None)
        assert inj.injected["io_error"] == 2
        assert inj.write_calls["data"] == 3

    def test_write_fault_label_is_selective(self):
        inj = FaultInjector().fail_writes("journal", times=1)
        assert inj.intercept_write("data", b"x") == (b"x", None)
        with pytest.raises(OSError):
            inj.intercept_write("journal", b"x")

    def test_torn_write_returns_prefix_and_crash(self):
        inj = FaultInjector().tear_write("journal", fraction=0.5)
        data, crash = inj.intercept_write("journal", b"0123456789")
        assert data == b"01234"
        assert isinstance(crash, SimulatedCrash)
        # One-shot: the next write is whole.
        assert inj.intercept_write("journal", b"ab") == (b"ab", None)

    def test_torn_write_always_keeps_a_strict_prefix(self):
        inj = FaultInjector().tear_write("data", fraction=0.0)
        data, _ = inj.intercept_write("data", b"xy")
        assert data == b"x"
        inj.tear_write("data", call=inj.write_calls["data"] + 1, fraction=1.0)
        data, _ = inj.intercept_write("data", b"xy")
        assert data == b"x"  # never the full payload

    def test_determinism_same_plan_same_firing(self):
        def run():
            inj = FaultInjector(seed=7)
            inj.crash_at("a", hit=2).fail_writes("data", times=1)
            log = []
            for point in ("a", "b", "a", "b"):
                try:
                    inj.crash_point(point)
                    log.append(("pass", point))
                except SimulatedCrash:
                    log.append(("crash", point))
            try:
                inj.intercept_write("data", b"x")
            except OSError:
                log.append(("eio", "data"))
            return log, dict(inj.hits), dict(inj.injected)

        assert run() == run()

    def test_counters_mirrored_into_obs_registry(self):
        registry = obs.enable(obs.MetricsRegistry())
        try:
            inj = FaultInjector().fail_writes("data", times=1)
            with pytest.raises(OSError):
                inj.intercept_write("data", b"x")
            assert registry.counter("faults.io_error").value == 1
        finally:
            obs.disable()


# ----------------------------------------------------------------------
# Pager: retries and degraded mode
# ----------------------------------------------------------------------
class TestPagerRetries:
    def test_transient_write_error_is_retried(self, tmp_path):
        pager = fast_pager(tmp_path / "p.sbt")
        page = pager.allocate_page()
        inj = FaultInjector().fail_writes("data", times=2)
        pager.faults = inj
        pager.write_page(page, b"survived")
        pager.faults = None
        assert pager.write_retries == 2
        assert pager.write_failures == 0
        assert not pager.degraded
        assert pager.read_page(page).rstrip(b"\x00") == b"survived"
        pager.close()

    def test_retry_exhaustion_propagates_oserror(self, tmp_path):
        pager = fast_pager(tmp_path / "p.sbt", max_write_retries=1)
        page = pager.allocate_page()
        pager.write_page(page, b"old")
        pager.faults = FaultInjector().fail_writes("data", times=None)
        with pytest.raises(OSError):
            pager.write_page(page, b"new")
        pager.faults = None
        assert pager.write_failures == 1
        assert not pager.degraded  # one failure < degrade_after
        pager.write_page(page, b"new")  # recovers once the fault clears
        pager.close()

    def test_degraded_mode_after_consecutive_failures(self, tmp_path):
        pager, (page,) = committed_pager(
            tmp_path / "p.sbt", [b"committed"],
            max_write_retries=0, degrade_after=2,
        )
        pager.faults = FaultInjector().fail_writes("data", times=None)
        with pytest.raises(OSError):
            pager.write_page(page, b"doomed-1")
        with pytest.warns(RuntimeWarning, match="degraded mode"):
            with pytest.raises(OSError):
                pager.write_page(page, b"doomed-2")
        assert pager.degraded
        # Mutations now fail fast; reads keep working.
        with pytest.raises(PagerDegradedError):
            pager.write_page(page, b"doomed-3")
        with pytest.raises(PagerDegradedError):
            pager.allocate_page()
        with pytest.raises(PagerDegradedError):
            pager.commit()
        assert pager.read_page(page).rstrip(b"\x00") == b"committed"
        # Degraded close leaves the journal: reopening rolls back.
        pager.close()
        assert os.path.exists(str(tmp_path / "p.sbt") + "-journal")
        reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert reopened.read_page(page).rstrip(b"\x00") == b"committed"
        reopened.close()

    def test_degraded_store_close_skips_flush(self, tmp_path):
        path = str(tmp_path / "s.sbt")
        store = PagedNodeStore(
            path, "sum", page_size=PAGE_SIZE, journaled=True, buffer_capacity=8,
        )
        store.pager.retry_backoff = 0.0
        store.pager.max_write_retries = 0
        store.pager.degrade_after = 1
        tree = SBTree("sum", store, branching=4, leaf_capacity=4)
        tree.insert(5, Interval(0, 10))
        store.commit()
        committed = tree.to_table()
        tree.insert(7, Interval(5, 20))  # dirty frames only
        store.pager.faults = FaultInjector().fail_writes("data", times=None)
        with pytest.warns(RuntimeWarning, match="degraded mode"):
            with pytest.raises(OSError):
                store.commit()
        assert store.pager.degraded
        store.close()  # must not raise trying to flush dirty frames
        store.pager.faults = None
        reopened = PagedNodeStore(path, journaled=True)
        assert SBTree(store=reopened).to_table() == committed
        reopened.close()

    def test_fsync_failure_is_never_retried(self, tmp_path):
        pager, (page,) = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.write_page(page, b"uncommitted")
        inj = FaultInjector().fail_fsyncs("data", times=1)
        pager.faults = inj
        with pytest.raises(OSError):
            pager.commit()
        # Exactly one fsync attempt reached the injector: no retry loop.
        assert inj.fsync_calls["data"] == 1
        assert pager.fsync_failures == 1
        # The commit point (journal deletion) was never reached.
        assert os.path.exists(pager.journal_path)
        simulate_crash(pager)
        reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert reopened.read_page(page).rstrip(b"\x00") == b"committed"
        reopened.close()


# ----------------------------------------------------------------------
# Write-ahead discipline
# ----------------------------------------------------------------------
class TestJournalWriteAhead:
    def test_journal_record_fsynced_before_page_overwrite(self, tmp_path):
        pager, (page,) = committed_pager(tmp_path / "p.sbt", [b"committed"])
        inj = FaultInjector()
        pager.faults = inj
        pager.write_page(page, b"uncommitted")
        # Header + one pre-image record, each made durable before the
        # data write of the overwrite happened.
        assert inj.fsync_calls["journal"] == 2
        assert inj.hits["after_journal_create"] == 1
        assert inj.hits["after_journal_fsync"] == 1
        assert inj.write_calls["data"] == 1
        pager.faults = None
        simulate_crash(pager)
        reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert reopened.read_page(page).rstrip(b"\x00") == b"committed"
        reopened.close()

    @pytest.mark.parametrize(
        "point", ["before_journal_fsync", "before_page_write", "after_page_write"]
    )
    def test_crash_around_first_overwrite_recovers(self, tmp_path, point):
        pager, (page,) = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.faults = FaultInjector().crash_at(point, hit=1)
        with pytest.raises(SimulatedCrash):
            pager.write_page(page, b"uncommitted")
        simulate_crash(pager)
        reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert reopened.read_page(page).rstrip(b"\x00") == b"committed"
        reopened.close()


# ----------------------------------------------------------------------
# Torn / corrupt journal records
# ----------------------------------------------------------------------
class TestJournalRecords:
    def test_torn_record_append_recovers_cleanly(self, tmp_path):
        pager, (a, b) = committed_pager(tmp_path / "p.sbt", [b"aaa", b"bbb"])
        pager.write_page(a, b"a-new")  # record 1: complete
        pager.faults = FaultInjector().tear_write("journal", fraction=0.4)
        with pytest.raises(SimulatedCrash):
            pager.write_page(b, b"b-new")  # record 2: torn mid-append
        simulate_crash(pager)
        # The torn tail is the normal crash signature: no warning, and
        # both pages come back committed (b was never overwritten).
        reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert reopened.read_page(a).rstrip(b"\x00") == b"aaa"
        assert reopened.read_page(b).rstrip(b"\x00") == b"bbb"
        reopened.close()

    def test_rollback_stops_at_last_valid_record(self, tmp_path):
        pager, (a, b) = committed_pager(tmp_path / "p.sbt", [b"aaa", b"bbb"])
        pager.write_page(a, b"a-new")
        pager.write_page(b, b"b-new")
        simulate_crash(pager)
        # Corrupt the pre-image inside record 2 (page b's).
        record_stride = Pager._JOURNAL_RECORD.size + PAGE_SIZE
        offset = Pager._JOURNAL_HEADER.size + record_stride + (
            Pager._JOURNAL_RECORD.size + 40
        )
        with open(pager.journal_path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.warns(RuntimeWarning, match="stops at the last valid"):
            reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        # Record 1 (before the corruption) was applied; record 2 was not.
        assert reopened.read_page(a).rstrip(b"\x00") == b"aaa"
        assert reopened.read_page(b).rstrip(b"\x00") == b"b-new"
        reopened.close()

    def test_bad_magic_warns_and_proceeds(self, tmp_path):
        pager, (page,) = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.close()
        with open(pager.journal_path, "wb") as fh:
            fh.write(b"NOTAJRNL" + b"\x00" * 64)
        with pytest.warns(RuntimeWarning, match="bad journal magic"):
            reopened = fast_pager(tmp_path / "p.sbt", journaled=True)
        assert not os.path.exists(pager.journal_path)
        assert reopened.read_page(page).rstrip(b"\x00") == b"committed"
        reopened.close()

    def test_truncated_header_warns(self, tmp_path):
        pager, _ = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.close()
        with open(pager.journal_path, "wb") as fh:
            fh.write(b"\x01\x02\x03")
        with pytest.warns(RuntimeWarning, match="truncated journal header"):
            fast_pager(tmp_path / "p.sbt", journaled=True).close()

    def test_strict_mode_raises_and_keeps_journal(self, tmp_path):
        pager, _ = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.close()
        with open(pager.journal_path, "wb") as fh:
            fh.write(b"NOTAJRNL" + b"\x00" * 64)
        with pytest.raises(JournalError, match="bad journal magic"):
            fast_pager(tmp_path / "p.sbt", journaled=True, strict=True)
        # Left on disk for forensics / `repro fsck`.
        assert os.path.exists(pager.journal_path)


# ----------------------------------------------------------------------
# Buffer pool: the eviction write-back regression
# ----------------------------------------------------------------------
class TestBufferPoolEvictionFailure:
    def test_failed_eviction_writeback_keeps_dirty_frame(self, tmp_path):
        pager = fast_pager(tmp_path / "p.sbt", max_write_retries=0)
        p1 = pager.allocate_page()
        p2 = pager.allocate_page()
        pool = BufferPool(pager, capacity=1)
        pool.write(p1, b"precious")
        inj = FaultInjector().fail_writes("data", times=None)
        pager.faults = inj
        # Admitting p2 must evict p1; the write-back fails with EIO.
        with pytest.raises(OSError):
            pool.write(p2, b"newcomer")
        # The regression: the dirty victim must still be in the pool,
        # not popped-then-lost.
        assert p1 in pool._frames
        assert pool._frames[p1].dirty
        inj.disarm()
        pool.write(p2, b"newcomer")  # eviction now succeeds
        pool.flush()
        assert pager.read_page(p1).rstrip(b"\x00") == b"precious"
        assert pager.read_page(p2).rstrip(b"\x00") == b"newcomer"
        pager.close()

    def test_failed_eviction_during_read_admission(self, tmp_path):
        pager = fast_pager(tmp_path / "p.sbt", max_write_retries=0)
        p1 = pager.allocate_page()
        p2 = pager.allocate_page()
        pager.write_page(p2, b"on-disk")
        pool = BufferPool(pager, capacity=1)
        pool.write(p1, b"precious")
        inj = FaultInjector().fail_writes("data", times=None)
        pager.faults = inj
        with pytest.raises(OSError):
            pool.read(p2)
        assert p1 in pool._frames and pool._frames[p1].dirty
        inj.disarm()
        assert pool.read(p2).rstrip(b"\x00") == b"on-disk"
        pool.flush()
        assert pager.read_page(p1).rstrip(b"\x00") == b"precious"
        pager.close()


# ----------------------------------------------------------------------
# simulate_crash
# ----------------------------------------------------------------------
class TestSimulateCrash:
    def test_closes_handles_without_committing(self, tmp_path):
        pager, (page,) = committed_pager(tmp_path / "p.sbt", [b"committed"])
        pager.write_page(page, b"uncommitted")
        simulate_crash(pager)
        assert pager._file.closed
        assert os.path.exists(pager.journal_path)
        # Idempotent on already-closed handles.
        simulate_crash(pager)

    def test_accepts_a_store(self, tmp_path):
        store = PagedNodeStore(
            str(tmp_path / "s.sbt"), "sum", page_size=PAGE_SIZE, journaled=True,
        )
        simulate_crash(store)
        assert store.pager._file.closed
