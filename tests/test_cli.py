"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture()
def facts_csv(tmp_path):
    path = tmp_path / "facts.csv"
    path.write_text(
        "value,start,end\n"
        "2,10,40\n"
        "3,10,30\n"
        "1,20,40\n"
        "2,5,15\n"
        "4,35,45\n"
        "1,10,50\n"
    )
    return str(path)


@pytest.fixture()
def sum_index(tmp_path, facts_csv):
    path = str(tmp_path / "sum.sbt")
    assert main(["build", path, "--kind", "sum", "--csv", facts_csv]) == 0
    return path


@pytest.fixture()
def msb_index(tmp_path, facts_csv):
    path = str(tmp_path / "max.sbt")
    assert main(["build", path, "--kind", "max", "--csv", facts_csv, "--msb"]) == 0
    return path


class TestBuild:
    def test_build_reports_count(self, tmp_path, facts_csv, capsys):
        path = str(tmp_path / "t.sbt")
        main(["build", path, "--kind", "sum", "--csv", facts_csv])
        out = capsys.readouterr().out
        assert "6 facts" in out

    def test_header_line_skipped(self, sum_index):
        # Six data rows, one header: built index answers Figure 3 values.
        assert main(["lookup", sum_index, "19"]) == 0

    def test_explicit_capacities(self, tmp_path, facts_csv):
        path = str(tmp_path / "t.sbt")
        code = main(
            ["build", path, "--kind", "sum", "--csv", facts_csv,
             "--branching", "4", "--leaf-capacity", "4"]
        )
        assert code == 0
        assert main(["verify", path]) == 0


class TestLookup:
    def test_figure3_lookup(self, sum_index, capsys):
        assert main(["lookup", sum_index, "19"]) == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_windowed_lookup_on_msb(self, msb_index, capsys):
        assert main(["lookup", msb_index, "50", "--window", "20"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_windowed_lookup_rejected_on_plain_tree(self, sum_index, capsys):
        assert main(["lookup", sum_index, "50", "--window", "20"]) == 2
        assert "MSB" in capsys.readouterr().err


class TestDumpAndRange:
    def test_dump_matches_figure3(self, sum_index, capsys):
        main(["dump", sum_index])
        out = capsys.readouterr().out
        assert "[5, 10)" in out
        assert "[45, 50)" in out

    def test_dump_limit(self, sum_index, capsys):
        main(["dump", sum_index, "--limit", "2"])
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_dump_to_csv_roundtrips(self, sum_index, tmp_path, capsys):
        out_csv = str(tmp_path / "dump.csv")
        assert main(["dump", sum_index, "--csv", out_csv]) == 0
        from repro import ConstantIntervalTable

        with open(out_csv) as handle:
            table = ConstantIntervalTable.from_csv(handle)
        assert table.value_at(19) == 6
        # The exported CSV is itself valid `build` input.
        rebuilt = str(tmp_path / "rebuilt.sbt")
        assert main(["build", rebuilt, "--kind", "sum", "--csv", out_csv]) == 0
        assert main(["lookup", rebuilt, "19"]) == 0
        assert capsys.readouterr().out.strip().endswith("6")

    def test_range_query(self, sum_index, capsys):
        main(["range", sum_index, "14", "28"])
        out = capsys.readouterr().out
        assert "[14, 15)" in out
        assert "[20, 28)" in out


class TestInspectVerifyCompact:
    def test_inspect_fields(self, sum_index, capsys):
        assert main(["inspect", sum_index]) == 0
        out = capsys.readouterr().out
        for field in ("kind", "branching", "pages", "height", "nodes/level",
                      "leaf fill"):
            assert field in out
        assert "sum" in out

    def test_verify_ok(self, sum_index, capsys):
        assert main(["verify", sum_index]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_compact(self, msb_index, capsys):
        assert main(["compact", msb_index]) == 0
        assert "compacted:" in capsys.readouterr().out
        assert main(["verify", msb_index]) == 0

    def test_inspect_msb(self, msb_index, capsys):
        main(["inspect", msb_index])
        assert "MSB-tree" in capsys.readouterr().out


class TestTqlCommand:
    @pytest.fixture()
    def rx_csv(self, tmp_path):
        path = tmp_path / "rx.csv"
        path.write_text(
            "value,start,end,patient\n"
            "2,10,40,Amy\n"
            "3,10,30,Ben\n"
            "1,20,40,Coy\n"
            "2,5,15,Dan\n"
            "4,35,45,Eve\n"
            "1,10,50,Fred\n"
        )
        return str(path)

    def test_scalar_result(self, rx_csv, capsys):
        code = main(["tql", "SUM(value) OVER rx AT 19", "--table", f"rx={rx_csv}"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_table_result(self, rx_csv, capsys):
        main(["tql", "SUM(value) OVER rx DURING [14, 28)", "--table", f"rx={rx_csv}"])
        out = capsys.readouterr().out
        assert "[15, 20)" in out
        assert "[20, 28)" in out

    def test_payload_condition(self, rx_csv, capsys):
        main(
            ["tql", "SUM(value) OVER rx WHEN patient != 'Fred' AT 19",
             "--table", f"rx={rx_csv}"]
        )
        assert capsys.readouterr().out.strip() == "5"

    def test_partitioned_result(self, rx_csv, capsys):
        main(
            ["tql", "COUNT(value) OVER rx PARTITION BY patient AT 19",
             "--table", f"rx={rx_csv}"]
        )
        out = capsys.readouterr().out
        assert "Amy: 1" in out
        assert "Dan: 0" in out

    def test_bad_binding(self, rx_csv, capsys):
        assert main(["tql", "SUM(value) OVER rx AT 1", "--table", "nonsense"]) == 2
        assert "name=path" in capsys.readouterr().err

    def test_tql_error_reported(self, rx_csv, capsys):
        code = main(
            ["tql", "SUM(value) OVER missing AT 1", "--table", f"rx={rx_csv}"]
        )
        assert code == 2
        assert "unknown relation" in capsys.readouterr().err

    def test_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["tql", "SUM(value) OVER r AT 1", "--table", f"r={bad}"])


class TestEntryPoint:
    def test_module_invocation(self, sum_index):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lookup", sum_index, "19"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert result.stdout.strip() == "6"

    def test_usage_error(self):
        with pytest.raises(SystemExit):
            main([])
