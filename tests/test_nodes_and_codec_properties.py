"""Property tests for the node model and page codec."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nodes import Node
from repro.core.values import spec_for
from repro.storage import NodeCodec

finite_times = st.integers(min_value=-(2**40), max_value=2**40)
numbers = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(
        min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
)


class TestNodeModel:
    def test_find_uses_half_open_semantics(self):
        node = Node(1, True, times=[10, 20, 30], values=[0, 1, 2, 3])
        assert node.find(9) == 0
        assert node.find(10) == 1
        assert node.find(19) == 1
        assert node.find(20) == 2
        assert node.find(30) == 3
        assert node.find(1_000) == 3

    @given(times=st.lists(finite_times, unique=True, min_size=1, max_size=30))
    def test_find_is_consistent_with_bounds(self, times):
        times = sorted(times)
        node = Node(1, True, times=list(times), values=[0] * (len(times) + 1))
        lo, hi = -math.inf, math.inf
        for probe in times + [t + 1 for t in times] + [times[0] - 5]:
            i = node.find(probe)
            start, end = node.bounds(i, lo, hi)
            assert start <= probe < end

    def test_bounds_edges_inherit_span(self):
        node = Node(1, True, times=[10], values=[0, 1])
        assert node.bounds(0, -50, 99) == (-50, 10)
        assert node.bounds(1, -50, 99) == (10, 99)

    def test_interval_count(self):
        node = Node(1, True, times=[1, 2], values=[0, 0, 0])
        assert node.interval_count == 3

    def test_clone_shell_keeps_shape_flags(self):
        interior = Node(1, False, uvalues=[1])
        clone = interior.clone_shell(9)
        assert clone.node_id == 9
        assert not clone.is_leaf
        assert clone.uvalues == []
        leaf = Node(2, True)
        assert leaf.clone_shell(3).uvalues is None


@st.composite
def leaf_nodes(draw, value_strategy, allow_null=False):
    times = sorted(draw(st.lists(finite_times, unique=True, max_size=20)))
    count = len(times) + 1
    values = []
    for _ in range(count):
        if allow_null and draw(st.booleans()):
            values.append(None)
        else:
            values.append(draw(value_strategy))
    return Node(7, True, times=times, values=values)


class TestCodecProperties:
    @pytest.mark.parametrize("kind", ["sum", "count"])
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_numeric_leaf_roundtrip(self, kind, data):
        node = data.draw(leaf_nodes(numbers))
        codec = NodeCodec(spec_for(kind), payload_size=4092)
        decoded = codec.decode(codec.encode(node), 7)
        assert decoded.times == node.times
        assert decoded.values == node.values

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_minmax_leaf_roundtrip_with_nulls(self, data):
        node = data.draw(leaf_nodes(numbers, allow_null=True))
        codec = NodeCodec(spec_for("max"), payload_size=4092)
        decoded = codec.decode(codec.encode(node), 7)
        assert decoded.values == node.values

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_avg_pair_roundtrip(self, data):
        pairs = st.tuples(numbers, st.integers(min_value=-(2**30), max_value=2**30))
        node = data.draw(leaf_nodes(pairs))
        codec = NodeCodec(spec_for("avg"), payload_size=8188)
        decoded = codec.decode(codec.encode(node), 7)
        assert decoded.values == node.values

    @given(
        children=st.lists(
            st.integers(min_value=1, max_value=2**40), min_size=1, max_size=20
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_interior_roundtrip(self, children, seed):
        count = len(children)
        node = Node(
            3,
            False,
            times=list(range(count - 1)),
            values=[seed + i for i in range(count)],
            children=children,
            uvalues=[seed - i for i in range(count)],
        )
        codec = NodeCodec(spec_for("max"), payload_size=4092)
        decoded = codec.decode(codec.encode(node), 3)
        assert decoded.children == children
        assert decoded.uvalues == node.uvalues
        assert decoded.times == node.times

    def test_whole_floats_restore_to_int(self):
        codec = NodeCodec(spec_for("sum"), payload_size=4092)
        node = Node(1, True, times=[2.0], values=[3.0, 4.5])
        decoded = codec.decode(codec.encode(node), 1)
        assert decoded.times == [2]
        assert isinstance(decoded.times[0], int)
        assert decoded.values == [3, 4.5]
        assert isinstance(decoded.values[0], int)
        assert isinstance(decoded.values[1], float)
