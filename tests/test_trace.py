"""Tests for request-scoped tracing (repro.obs.trace) end to end."""

import io
import json

import pytest

from repro import obs
from repro.core.intervals import Interval
from repro.core.sbtree import SBTree
from repro.obs import trace
from repro.obs.overhead import run_overhead_gate
from repro.service import ServerHandle, ServiceClient
from repro.service.loadgen import run_loadgen
from repro.sharding import ShardedTree


@pytest.fixture
def sink_buffer():
    """Tracing at sample=1.0 into an in-memory sink; always disabled after."""
    buf = io.StringIO()
    registry = obs.MetricsRegistry()
    trace.enable(obs.TraceSink(buf), sample=1.0, registry=registry)
    try:
        yield buf, registry
    finally:
        trace.disable()


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def by_trace(recs):
    grouped = {}
    for rec in recs:
        grouped.setdefault(rec["trace_id"], []).append(rec)
    return grouped


def assert_single_rooted_tree(spans):
    """Every span chains to exactly one root within its own trace."""
    ids = {s["span_id"] for s in spans}
    assert len(ids) == len(spans), "span ids must be unique"
    roots = [s for s in spans if s["parent_id"] is None]
    orphans = [
        s
        for s in spans
        if s["parent_id"] is not None and s["parent_id"] not in ids
    ]
    assert len(roots) == 1, f"want one root, got {[r['span'] for r in roots]}"
    assert not orphans, f"orphan spans: {[o['span'] for o in orphans]}"


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = trace.TraceContext("t1", "s1", None)
        parsed = trace.TraceContext.from_wire(ctx.to_wire())
        assert parsed.trace_id == "t1" and parsed.span_id == "s1"

    def test_from_wire_rejects_garbage(self):
        assert trace.TraceContext.from_wire(None) is None
        assert trace.TraceContext.from_wire("nope") is None
        assert trace.TraceContext.from_wire({"id": 7, "span": "s"}) is None
        assert trace.TraceContext.from_wire({"id": "t"}) is None

    def test_child_links_to_parent(self):
        ctx = trace.TraceContext("t1", "s1")
        child = ctx.child()
        assert child.trace_id == "t1"
        assert child.parent_id == "s1"
        assert child.span_id != "s1"


class TestSamplingAndDisabledPath:
    def test_disabled_span_is_shared_null(self):
        assert not trace.is_enabled()
        assert trace.span("x") is trace.span("y")
        assert trace.new_trace() is None

    def test_span_outside_any_trace_is_null(self, sink_buffer):
        assert trace.span("x") is trace.span("y")

    def test_head_sampling_is_deterministic(self):
        buf = io.StringIO()
        trace.enable(obs.TraceSink(buf), sample=0.25)
        try:
            kept = [trace.new_trace() is not None for _ in range(20)]
        finally:
            trace.disable()
        assert sum(kept) == 5
        # Evenly spread (every 4th), not front-loaded.
        assert kept[3] and kept[7] and not kept[0] and not kept[1]

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            trace.enable(sample=0.0)
        with pytest.raises(ValueError):
            trace.enable(sample=1.5)
        trace.disable()


class TestSpans:
    def test_nested_spans_share_trace_and_chain_parents(self, sink_buffer):
        buf, _ = sink_buffer
        ctx = trace.new_trace()
        with trace.activated(ctx):
            with trace.span("outer", attrs={"k": 1}):
                with trace.span("inner"):
                    pass
        recs = records(buf)
        inner = next(r for r in recs if r["span"] == "inner")
        outer = next(r for r in recs if r["span"] == "outer")
        assert inner["trace_id"] == outer["trace_id"] == ctx.trace_id
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] == ctx.span_id
        assert outer["k"] == 1
        assert outer["wall_us"] >= inner["wall_us"]

    def test_span_records_storage_deltas(self, sink_buffer):
        buf, _ = sink_buffer
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for i in range(30):
            tree.insert(1, Interval(i, i + 3))
        ctx = trace.new_trace()
        with trace.activated(ctx):
            with trace.span("tree.lookup", stores=(tree.store,)):
                tree.lookup(15)
        rec = records(buf)[0]
        assert rec["reads"] > 0  # the lookup's node accesses, attributed

    def test_span_durations_fold_into_registry(self, sink_buffer):
        _, registry = sink_buffer
        ctx = trace.new_trace()
        with trace.activated(ctx):
            with trace.span("work"):
                pass
        hist = registry.to_dict()["histograms"]["span.work.wall_us"]
        assert hist["count"] == 1

    def test_exception_marks_span(self, sink_buffer):
        buf, _ = sink_buffer
        ctx = trace.new_trace()
        with trace.activated(ctx):
            with pytest.raises(RuntimeError):
                with trace.span("boom"):
                    raise RuntimeError("x")
        assert records(buf)[0]["error"] == "RuntimeError"


class TestSpanCollector:
    def test_replay_reparents_under_each_participant(self, sink_buffer):
        buf, _ = sink_buffer
        collector = trace.SpanCollector()
        with collector.recording():
            with trace.span("shard.apply"):
                with trace.span("tree.insert"):
                    pass
        assert records(buf) == []  # recording emits nothing yet
        parents = [trace.new_trace().child() for _ in range(2)]
        for parent in parents:
            collector.replay(parent)
        grouped = by_trace(records(buf))
        assert len(grouped) == 2
        for parent in parents:
            spans = grouped[parent.trace_id]
            assert {s["span"] for s in spans} == {"shard.apply", "tree.insert"}
            apply_rec = next(s for s in spans if s["span"] == "shard.apply")
            insert_rec = next(s for s in spans if s["span"] == "tree.insert")
            assert apply_rec["parent_id"] == parent.span_id
            assert insert_rec["parent_id"] == apply_rec["span_id"]

    def test_replay_folds_once(self, sink_buffer):
        _, registry = sink_buffer
        collector = trace.SpanCollector()
        with collector.recording():
            with trace.span("tree.insert"):
                pass
        for index in range(3):
            collector.replay(trace.new_trace().child(), fold=index == 0)
        hist = registry.to_dict()["histograms"]["span.tree.insert.wall_us"]
        assert hist["count"] == 1


class TestEndToEndPropagation:
    def test_loadgen_produces_complete_span_trees(self, sink_buffer):
        """ISSUE acceptance: at sampling=1.0 every request's spans form
        one rooted tree from client send down to per-shard tree ops,
        with no orphans and no cross-request leakage under concurrency."""
        buf, registry = sink_buffer
        sharded = ShardedTree("sum", num_shards=4, span=(0, 10_000),
                              branching=4, leaf_capacity=4)
        with ServerHandle.start(
            sharded, batch_max=8, batch_delay=0.001, registry=registry
        ) as handle:
            result = run_loadgen(
                handle.host,
                handle.port,
                connections=3,
                ops_per_connection=30,
                seed=11,
            )
        assert result.verified_ok
        assert result.tracing_enabled

        grouped = by_trace(records(buf))
        # One trace per client request (loadgen ops + its 2 stats probes).
        assert len(grouped) == result.total_ops + 2
        insert_traces = 0
        for spans in grouped.values():
            assert_single_rooted_tree(spans)
            root = next(s for s in spans if s["parent_id"] is None)
            assert root["span"] == "client.request"
            names = {s["span"] for s in spans}
            if root.get("op") in ("insert", "batch_insert"):
                insert_traces += 1
                assert "service.flush" in names
                assert "shard.apply" in names
                # The per-shard tree-op leaves, same trace_id throughout.
                assert "tree.insert" in names
            elif root.get("op") == "lookup":
                assert "shard.lookup" in names and "tree.lookup" in names
            # No cross-request leakage: every record already grouped by
            # trace_id, so a leaked span would appear as an orphan above.
        assert insert_traces > 0

    def test_server_spans_absent_when_client_untraced(self):
        buf = io.StringIO()
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100))
        with ServerHandle.start(sharded, batch_max=2) as handle:
            with ServiceClient(handle.host, handle.port) as svc:
                svc.insert(1, 10, 20)
                svc.lookup(15)
        assert buf.getvalue() == ""


class TestOverheadGate:
    def test_gate_runs_and_writes_bench_json(self, tmp_path):
        report = run_overhead_gate(
            facts=60, lookups=300, out_dir=str(tmp_path)
        )
        assert report["baseline_us_per_op"] > 0
        assert report["ratio_disabled"] > 0
        assert not trace.is_enabled() and not obs.is_enabled()
        payload = json.loads(
            (tmp_path / "BENCH_trace_overhead.json").read_text()
        )
        assert payload["extra"]["modes"] == [
            "baseline", "disabled", "traced_1pct",
        ]
        assert "ratio_disabled" in payload["extra"]

    def test_gate_refuses_to_run_under_instrumentation(self):
        trace.enable(sample=1.0)
        try:
            with pytest.raises(RuntimeError):
                run_overhead_gate(facts=10, lookups=10)
        finally:
            trace.disable()
