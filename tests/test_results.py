"""Unit tests for constant-interval result tables and step-function merging."""

import pytest

from repro import ConstantIntervalTable, Interval, NEG_INF, POS_INF, spec_for
from repro.core.results import merge_step_functions, trim_initial


def table(*rows):
    return ConstantIntervalTable((v, Interval(a, b)) for v, a, b in rows)


class TestConstruction:
    def test_contiguity_enforced(self):
        with pytest.raises(ValueError):
            table((1, 0, 5), (2, 6, 10))

    def test_empty_ok(self):
        assert len(ConstantIntervalTable()) == 0


class TestQueries:
    def test_value_at(self):
        t = table((1, 0, 5), (2, 5, 10))
        assert t.value_at(0) == 1
        assert t.value_at(4) == 1
        assert t.value_at(5) == 2
        with pytest.raises(KeyError):
            t.value_at(10)
        with pytest.raises(KeyError):
            t.value_at(-1)

    def test_value_at_unbounded(self):
        t = ConstantIntervalTable([(9, Interval(NEG_INF, POS_INF))])
        assert t.value_at(-1e12) == 9

    def test_restrict(self):
        t = table((1, 0, 5), (2, 5, 10), (3, 10, 20))
        got = t.restrict(Interval(3, 12))
        assert got == table((1, 3, 5), (2, 5, 10), (3, 10, 12))

    def test_coalesce(self):
        t = table((1, 0, 5), (1, 5, 10), (2, 10, 12))
        assert t.coalesce() == table((1, 0, 10), (2, 10, 12))

    def test_mapped_and_finalized(self):
        t = ConstantIntervalTable([((7, 4), Interval(0, 5))])
        assert t.finalized(spec_for("avg")).rows[0][0] == pytest.approx(1.75)

    def test_pretty_output(self):
        text = table((1.5, 0, 5)).pretty("sum dosage")
        assert "sum dosage" in text
        assert "[0, 5)" in text
        assert "1.50" in text


class TestTrimInitial:
    def test_trims_edges_only(self):
        spec = spec_for("sum")
        t = table((0, 0, 5), (3, 5, 10), (0, 10, 15), (4, 15, 20), (0, 20, 25))
        got = trim_initial(t, spec)
        assert got == table((3, 5, 10), (0, 10, 15), (4, 15, 20))

    def test_all_initial(self):
        spec = spec_for("sum")
        assert len(trim_initial(table((0, 0, 5), (0, 5, 9)), spec)) == 0

    def test_min_max_null(self):
        spec = spec_for("min")
        t = table((None, 0, 5), (2, 5, 10))
        assert trim_initial(t, spec) == table((2, 5, 10))


class TestMergeStepFunctions:
    def test_pointwise_sum(self):
        f = table((1, 0, 10), (5, 10, 20))
        g = table((10, 0, 5), (20, 5, 20))
        merged = merge_step_functions(
            [f, g], lambda a, b: a + b, Interval(0, 20)
        )
        assert merged == table((11, 0, 5), (21, 5, 10), (25, 10, 20))

    def test_breakpoints_clipped_to_window(self):
        f = table((1, 0, 100))
        g = table((2, 0, 50), (3, 50, 100))
        merged = merge_step_functions(
            [f, g], lambda a, b: a * b, Interval(10, 40)
        )
        assert merged == table((2, 10, 40))

    def test_three_functions(self):
        f = table((1, 0, 10))
        g = table((2, 0, 10))
        h = table((4, 0, 4), (8, 4, 10))
        merged = merge_step_functions(
            [f, g, h], lambda a, b, c: a + b + c, Interval(0, 10)
        )
        assert merged == table((7, 0, 4), (11, 4, 10))


class TestCsvInterchange:
    def test_roundtrip(self):
        import io

        t = table((1, 0, 5), (2.5, 5, 10))
        buffer = io.StringIO()
        t.to_csv(buffer)
        buffer.seek(0)
        assert ConstantIntervalTable.from_csv(buffer) == t

    def test_infinite_endpoints_and_nulls(self):
        import io

        t = ConstantIntervalTable(
            [(None, Interval(NEG_INF, 5)), (3, Interval(5, POS_INF))]
        )
        buffer = io.StringIO()
        t.to_csv(buffer)
        buffer.seek(0)
        got = ConstantIntervalTable.from_csv(buffer)
        assert got == t

    def test_avg_pairs_rejected(self):
        import io

        t = ConstantIntervalTable([((7, 4), Interval(0, 5))])
        with pytest.raises(ValueError):
            t.to_csv(io.StringIO())

    def test_int_identity_preserved(self):
        import io

        t = table((5, 0, 10))
        buffer = io.StringIO()
        t.to_csv(buffer)
        buffer.seek(0)
        got = ConstantIntervalTable.from_csv(buffer)
        value, interval = got.rows[0]
        assert isinstance(value, int)
        assert isinstance(interval.start, int)


class TestFromBoundaries:
    def test_samples_each_piece(self):
        t = ConstantIntervalTable.from_boundaries(
            [5, 10], lambda x: "lo" if x < 5 else ("mid" if x < 10 else "hi"),
            lo=0, hi=20,
        )
        assert t == table(("lo", 0, 5), ("mid", 5, 10), ("hi", 10, 20))

    def test_unbounded_domain(self):
        t = ConstantIntervalTable.from_boundaries([0], lambda x: x >= 0)
        assert t.value_at(-100) is False
        assert t.value_at(100) is True
