"""Tests for structural-health telemetry, Prometheus exposition, and top."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.intervals import Interval
from repro.core.sbtree import SBTree
from repro.obs.health import (
    render_prom,
    record_health,
    sharded_health,
    start_metrics_http,
    tree_health,
)
from repro.service import ServerHandle, ServiceClient
from repro.service.top import render_top, run_top
from repro.sharding import ShardedTree


def small_tree(n=40):
    tree = SBTree("sum", branching=4, leaf_capacity=4)
    for i in range(n):
        tree.insert(1, Interval(i, i + 5))
    return tree


class TestTreeHealth:
    def test_counts_match_tree_structure(self):
        tree = small_tree()
        health = tree_health(tree)
        assert health["height"] == tree.height
        assert health["nodes"] == tree.store.node_count()
        assert health["leaf_nodes"] + health["interior_nodes"] == health["nodes"]
        assert health["leaf_intervals"] > 0
        assert health["interior_intervals"] > 0
        assert 0 < health["leaf_fill"] <= 1.0
        assert 0 < health["interior_fill"] <= 1.0

    def test_single_leaf_tree(self):
        tree = SBTree("sum", branching=4, leaf_capacity=8)
        tree.insert(1, Interval(0, 10))
        health = tree_health(tree)
        assert health["height"] == 1
        assert health["interior_nodes"] == 0
        assert health["interior_fill"] == 0.0

    def test_paged_tree_reports_storage_gauges(self, tmp_path):
        from repro.storage import PagedNodeStore

        path = str(tmp_path / "health.sbt")
        with PagedNodeStore(path, "sum") as store:
            tree = SBTree("sum", store, branching=4, leaf_capacity=4)
            for i in range(30):
                tree.insert(1, Interval(i, i + 3))
            health = tree_health(tree)
        assert health["page_count"] > 0
        assert health["free_pages"] >= 0
        assert "journal_bytes" in health
        assert 0.0 <= health["buffer_hit_rate"] <= 1.0


class TestShardedHealth:
    def test_report_shape_and_debt(self):
        sharded = ShardedTree("sum", num_shards=4, span=(0, 1000),
                              branching=4, leaf_capacity=4)
        facts = [(1, (i * 7 % 950, i * 7 % 950 + 40)) for i in range(60)]
        sharded.batch_insert(facts)
        health = sharded_health(sharded)
        assert health["facts"] == 60
        assert health["num_shards"] == 4
        assert health["pieces"] >= health["facts"]
        assert health["piece_skew"] >= 1.0
        assert health["compaction_debt"] >= 0.0
        assert len(health["shards"]) == 4
        assert [s["index"] for s in health["shards"]] == [0, 1, 2, 3]

    def test_empty_sharded_tree(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100))
        health = sharded_health(sharded)
        assert health["facts"] == 0
        assert health["piece_skew"] == 0.0
        assert health["compaction_debt"] == 0.0

    def test_record_health_publishes_gauges(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100),
                              branching=4, leaf_capacity=4)
        sharded.batch_insert([(1, (10, 60)), (2, (30, 90))])
        registry = obs.MetricsRegistry()
        record_health(registry, sharded_health(sharded))
        gauges = registry.to_dict()["gauges"]
        assert gauges["health.facts"] == 2.0
        assert gauges["health.num_shards"] == 2.0
        assert "health.shard.0.height" in gauges
        assert "health.shard.1.nodes" in gauges


class TestPromExposition:
    def test_renders_counters_gauges_histograms(self):
        registry = obs.MetricsRegistry()
        registry.counter("service.errors").inc(3)
        registry.gauge("health.facts").set(120.0)
        hist = registry.histogram("op.wall_us", bounds=(10.0, 100.0))
        hist.record(5.0)
        hist.record(50.0)
        hist.record(500.0)
        text = render_prom(registry)
        assert "# TYPE repro_service_errors counter" in text
        assert "repro_service_errors 3" in text
        assert "# TYPE repro_health_facts gauge" in text
        assert "repro_health_facts 120" in text
        assert "# TYPE repro_op_wall_us histogram" in text
        # Buckets must be cumulative and end at +Inf == count.
        assert 'repro_op_wall_us_bucket{le="10"} 1' in text
        assert 'repro_op_wall_us_bucket{le="100"} 2' in text
        assert 'repro_op_wall_us_bucket{le="+Inf"} 3' in text
        assert "repro_op_wall_us_count 3" in text
        assert text.endswith("\n")

    def test_name_sanitisation(self):
        registry = obs.MetricsRegistry()
        registry.counter("service.batch.flushes").inc()
        text = render_prom(registry)
        assert "repro_service_batch_flushes 1" in text


class TestMetricsHTTP:
    def test_serves_metrics_and_404s_elsewhere(self):
        registry = obs.MetricsRegistry()
        registry.counter("fsck.runs").inc(2)
        refreshed = []
        with start_metrics_http(
            registry, 0, extra=lambda: refreshed.append(1)
        ) as server:
            url = f"http://{server.host}:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            assert "repro_fsck_runs 2" in body
            assert refreshed == [1]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope", timeout=5
                )


def canned_stats(count=10, conns=2):
    return {
        "kind": "sum",
        "shards": {"num_shards": 2, "facts": 50},
        "counters": {
            "service.connections.opened": conns,
            "service.errors": 0,
            "service.batch.flushes": 4,
        },
        "ops": {
            "service.lookup": {
                "count": count,
                "wall_us": {"p50": 120.0, "p95": 900.0, "p99": 2500.0},
            },
        },
        "spans": {
            "tree.insert": {"count": 8, "mean": 45.0, "p95": 90.0},
        },
        "health": {
            "facts": 50,
            "pieces": 61,
            "piece_skew": 1.3,
            "compaction_debt": 0.4,
            "shards": [
                {"index": 0, "height": 2, "nodes": 5, "leaf_fill": 0.7},
                {"index": 1, "height": 2, "nodes": 4, "leaf_fill": 0.6,
                 "buffer_hit_rate": 0.9, "journal_bytes": 0},
            ],
        },
    }


class TestTopRendering:
    def test_first_frame_shows_dash_rates(self):
        text = render_top(canned_stats())
        assert "kind=sum shards=2 facts=50" in text
        assert "lookup" in text
        assert "-" in text  # no rate on the first frame
        assert "p50    120us" in text
        assert "span breakdown (traced requests):" in text
        assert "tree.insert" in text
        assert "piece-skew 1.30" in text
        assert "compaction-debt 0.40" in text
        assert "shard 1" in text and "buf-hit" in text

    def test_rates_differenced_between_frames(self):
        prev = canned_stats(count=10)
        curr = canned_stats(count=30)
        text = render_top(curr, prev, dt=2.0)
        assert "10.0/s" in text

    def test_empty_stats_render(self):
        text = render_top({"kind": "sum"})
        assert "(no requests yet)" in text
        assert "(no health data)" in text


class TestRunTop:
    def test_polls_live_server(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 1000),
                              branching=4, leaf_capacity=4)
        with ServerHandle.start(sharded, batch_max=4) as handle:
            with ServiceClient(handle.host, handle.port) as svc:
                svc.batch_insert([[1, 10, 60], [2, 100, 400]])
                svc.lookup(50)
            out = io.StringIO()
            status = run_top(
                handle.host, handle.port,
                interval=0.01, iterations=2, out=out,
            )
        assert status == 0
        text = out.getvalue()
        assert text.count("repro top --") == 2
        assert "facts=2" in text
        assert "shard health:" in text

    def test_unreachable_server_returns_2(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        status = run_top("127.0.0.1", port, iterations=1, out=io.StringIO())
        assert status == 2


class TestStatsServiceOp:
    def test_stats_exposes_health_gauges_and_spans(self):
        registry = obs.MetricsRegistry()
        sink = obs.TraceSink(io.StringIO())
        from repro.obs import trace

        trace.enable(sink, sample=1.0, registry=registry)
        try:
            sharded = ShardedTree("sum", num_shards=2, span=(0, 1000),
                                  branching=4, leaf_capacity=4)
            with ServerHandle.start(
                sharded, batch_max=4, registry=registry
            ) as handle:
                with ServiceClient(handle.host, handle.port) as svc:
                    svc.batch_insert([[1, 10, 60], [3, 200, 700]])
                    svc.lookup(30)
                    stats = svc.stats()
        finally:
            trace.disable()
        assert stats["health"]["facts"] == 2
        assert stats["gauges"]["health.facts"] == 2.0
        assert "tree.insert" in stats["spans"]
        assert "client.request" in stats["spans"]
