"""Property tests for cumulative (moving-window) aggregates.

Three computation routes must agree with the oracle and each other:

* a :class:`FixedWindowTree` built for the queried offset (Section 4.1),
* the :class:`DualTreeAggregate` pair for SUM/COUNT/AVG (Section 4.2),
* the :class:`MSBTree` ``mlookup`` for MIN/MAX (Section 4.3).

This cross-agreement is also the regression pin for the Figure 21
erratum documented in DESIGN.md.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DualTreeAggregate,
    FixedWindowTree,
    Interval,
    MSBTree,
    check_tree,
)
from repro.core import reference

times = st.integers(min_value=0, max_value=100)
values = st.integers(min_value=-9, max_value=9)
offsets = st.integers(min_value=0, max_value=40)


@st.composite
def intervals(draw):
    start = draw(times)
    length = draw(st.integers(min_value=1, max_value=50))
    return Interval(start, start + length)


facts_lists = st.lists(st.tuples(values, intervals()), min_size=0, max_size=20)


@pytest.mark.parametrize("kind", ("sum", "count", "avg", "min", "max"))
@given(facts=facts_lists, w=offsets, t=times)
@settings(max_examples=50, deadline=None)
def test_fixed_window_lookup_matches_oracle(kind, facts, w, t):
    tree = FixedWindowTree(kind, window=w, branching=4, leaf_capacity=4)
    for value, interval in facts:
        tree.insert(value, interval)
    assert tree.lookup(t) == reference.cumulative_value(facts, kind, t, w)


@pytest.mark.parametrize("kind", ("sum", "count", "avg"))
@given(facts=facts_lists, w=offsets, t=times)
@settings(max_examples=50, deadline=None)
def test_dual_tree_lookup_matches_oracle(kind, facts, w, t):
    dual = DualTreeAggregate(kind, branching=4, leaf_capacity=4)
    for value, interval in facts:
        dual.insert(value, interval)
    check_tree(dual.current)
    check_tree(dual.ended)
    assert dual.window_lookup(t, w) == reference.cumulative_value(facts, kind, t, w)


@pytest.mark.parametrize("kind", ("sum", "avg"))
@given(facts=facts_lists, w=offsets)
@settings(max_examples=30, deadline=None)
def test_dual_tree_table_matches_oracle(kind, facts, w):
    dual = DualTreeAggregate(kind, branching=4, leaf_capacity=4)
    for value, interval in facts:
        dual.insert(value, interval)
    assert dual.window_table(w) == reference.cumulative_table(facts, kind, w)


@given(facts=facts_lists, w=offsets)
@settings(max_examples=30, deadline=None)
def test_dual_tree_with_deletions(facts, w):
    """Insert everything, delete every third fact, compare with oracle."""
    dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
    for value, interval in facts:
        dual.insert(value, interval)
    deleted = facts[::3]
    for value, interval in deleted:
        dual.delete(value, interval)
    live = [f for i, f in enumerate(facts) if i % 3 != 0]
    assert dual.window_table(w) == reference.cumulative_table(live, "sum", w)


@pytest.mark.parametrize("kind", ("min", "max"))
@given(facts=facts_lists, w=offsets, t=times)
@settings(max_examples=50, deadline=None)
def test_msb_window_lookup_matches_oracle(kind, facts, w, t):
    msb = MSBTree(kind, branching=4, leaf_capacity=4)
    for value, interval in facts:
        msb.insert(value, interval)
    check_tree(msb)
    assert msb.window_lookup(t, w) == reference.cumulative_value(facts, kind, t, w)


@pytest.mark.parametrize("kind", ("min", "max"))
@given(facts=facts_lists, w=offsets, t=times)
@settings(max_examples=25, deadline=None)
def test_msb_lookup_survives_mbmerge(kind, facts, w, t):
    msb = MSBTree(kind, branching=4, leaf_capacity=4)
    for value, interval in facts:
        msb.insert(value, interval)
    msb.mbmerge()
    check_tree(msb, check_compact=True)
    assert msb.window_lookup(t, w) == reference.cumulative_value(facts, kind, t, w)


@given(facts=facts_lists, w=offsets)
@settings(max_examples=25, deadline=None)
def test_msb_window_query_matches_pointwise(facts, w):
    msb = MSBTree("max", branching=4, leaf_capacity=4)
    for value, interval in facts:
        msb.insert(value, interval)
    window = Interval(0, 160)
    table = msb.window_query(window, w)
    for t in range(0, 160, 7):
        assert table.value_at(t) == reference.cumulative_value(facts, "max", t, w)


@pytest.mark.parametrize("kind", ("sum", "avg"))
@given(facts=facts_lists, t=times, w=offsets)
@settings(max_examples=30, deadline=None)
def test_fixed_window_and_dual_tree_agree(kind, facts, t, w):
    """The Figure 21 erratum pin: both routes must agree everywhere."""
    fixed = FixedWindowTree(kind, window=w, branching=4, leaf_capacity=4)
    dual = DualTreeAggregate(kind, branching=4, leaf_capacity=4)
    for value, interval in facts:
        fixed.insert(value, interval)
        dual.insert(value, interval)
    assert fixed.lookup(t) == dual.window_lookup(t, w)


@given(facts=facts_lists, t=times, w=offsets)
@settings(max_examples=30, deadline=None)
def test_fixed_window_and_msb_agree(facts, t, w):
    fixed = FixedWindowTree("min", window=w, branching=4, leaf_capacity=4)
    msb = MSBTree("min", branching=4, leaf_capacity=4)
    for value, interval in facts:
        fixed.insert(value, interval)
        msb.insert(value, interval)
    assert fixed.lookup(t) == msb.window_lookup(t, w)


def test_figure20_counterexample():
    """Figure 20: instantaneous SUMs equal, cumulative SUMs differ.

    R1 = {<1,[10,20)>, <1,[20,30)>} and R2 = {<1,[10,30)>} have the same
    instantaneous SUM but different cumulative SUMs for w = 10, so no
    single instantaneous index can answer cumulative SUM queries.
    """
    r1 = [(1, Interval(10, 20)), (1, Interval(20, 30))]
    r2 = [(1, Interval(10, 30))]
    assert reference.instantaneous_table(r1, "sum") == reference.instantaneous_table(
        r2, "sum"
    )
    d1 = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
    d2 = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
    for value, interval in r1:
        d1.insert(value, interval)
    for value, interval in r2:
        d2.insert(value, interval)
    # Identical instantaneous contents...
    assert d1.current.to_table() == d2.current.to_table()
    # ...but different cumulative results, resolved by the T' trees.
    assert d1.window_table(10) != d2.window_table(10)
    assert d1.window_lookup(25, 10) == 2  # both R1 tuples overlap [15, 25]
    assert d2.window_lookup(25, 10) == 1
