"""Tests for grouped (GROUP BY) maintained views."""

import pytest

from repro import Interval
from repro.relation import TemporalRelation
from repro.warehouse import ANY_WINDOW, GroupedAggregateView
from repro.workloads import PRESCRIPTIONS


@pytest.fixture()
def setup():
    rel = TemporalRelation("prescription")
    view = GroupedAggregateView(
        "DosageByPatient", rel, "sum",
        key_of=lambda row: row.payload["patient"],
        branching=4, leaf_capacity=4,
    )
    rows = {}
    for p in PRESCRIPTIONS:
        rows[p.patient] = rel.insert(p.dosage, p.valid, patient=p.patient)
    return rel, view, rows


class TestGroupedView:
    def test_per_group_values(self, setup):
        _, view, _ = setup
        assert view.value_at("Amy", 19) == 2
        assert view.value_at("Fred", 19) == 1
        assert view.value_at("Dan", 19) == 0  # ended at 15

    def test_unknown_key_is_empty_group(self, setup):
        _, view, _ = setup
        assert view.value_at("Nobody", 19) == 0

    def test_values_at_covers_all_groups(self, setup):
        _, view, _ = setup
        values = view.values_at(19)
        assert set(values) == {p.patient for p in PRESCRIPTIONS}
        assert values["Ben"] == 3

    def test_group_table(self, setup):
        _, view, _ = setup
        table = view.table("Amy")
        assert [(v, (i.start, i.end)) for v, i in table] == [(2, (10, 40))]

    def test_incremental_updates(self, setup):
        rel, view, rows = setup
        rel.insert(5, Interval(15, 45), patient="Amy")  # second Amy tuple
        assert view.value_at("Amy", 19) == 7
        rel.delete(rows["Amy"])
        assert view.value_at("Amy", 19) == 5

    def test_replay_on_creation(self):
        rel = TemporalRelation("r")
        for p in PRESCRIPTIONS:
            rel.insert(p.dosage, p.valid, patient=p.patient)
        view = GroupedAggregateView(
            "late", rel, "count",
            key_of=lambda row: row.payload["patient"],
            branching=4, leaf_capacity=4,
        )
        assert view.value_at("Amy", 19) == 1

    def test_detach(self, setup):
        rel, view, _ = setup
        view.detach()
        rel.insert(9, Interval(0, 100), patient="Amy")
        assert view.value_at("Amy", 19) == 2  # unchanged

    def test_min_group_rejects_deletion_atomically(self):
        rel = TemporalRelation("r")
        view = GroupedAggregateView(
            "worst", rel, "max",
            key_of=lambda row: row.payload["host"],
            branching=4, leaf_capacity=4,
        )
        row = rel.insert(10, Interval(0, 50), host="a")
        with pytest.raises(ValueError):
            rel.delete(row)
        # The veto fired before anything mutated.
        assert len(rel) == 1
        assert view.value_at("a", 10) == 10

    def test_any_window_groups(self):
        rel = TemporalRelation("r")
        view = GroupedAggregateView(
            "cum", rel, "max",
            key_of=lambda row: row.payload["host"],
            window=ANY_WINDOW,
            branching=4, leaf_capacity=4,
        )
        rel.insert(7, Interval(0, 10), host="a")
        rel.insert(3, Interval(20, 30), host="a")
        rel.insert(9, Interval(0, 10), host="b")
        assert view.value_at("a", 25, 20) == 7  # window [5,25] catches both
        assert view.value_at("a", 25, 5) == 3
        assert view.value_at("b", 25, 20) == 9

    def test_unknown_key_table_is_empty(self, setup):
        _, view, _ = setup
        table = view.table("Nobody")
        assert list(table) == []
        # Same domain semantics as any empty table: no instant covered.
        with pytest.raises(KeyError):
            table.value_at(19)

    def test_unknown_key_avg_finalizes(self):
        rel = TemporalRelation("r")
        view = GroupedAggregateView(
            "avg", rel, "avg",
            key_of=lambda row: row.payload["patient"],
            branching=4, leaf_capacity=4,
        )
        # Finalized empty value, not the raw (sum, count) accumulator.
        assert view.value_at("Nobody", 19) is None

    def test_empty_view_values_at(self):
        rel = TemporalRelation("r")
        view = GroupedAggregateView(
            "empty", rel, "sum",
            key_of=lambda row: row.payload["patient"],
            branching=4, leaf_capacity=4,
        )
        assert view.values_at(19) == {}

    def test_unknown_key_window_validation(self, setup):
        # Argument checks must not hide behind lazily created groups:
        # an unknown key with a bad window raises like a known key.
        _, view, _ = setup
        with pytest.raises(ValueError):
            view.value_at("Nobody", 19, 5)
        with pytest.raises(ValueError):
            view.table("Nobody", 5)
        cum = GroupedAggregateView(
            "cum2", TemporalRelation("r2"), "sum",
            key_of=lambda row: row.payload["k"],
            window=ANY_WINDOW, branching=4, leaf_capacity=4,
        )
        with pytest.raises(ValueError):
            cum.value_at("Nobody", 19)  # ANY_WINDOW needs w
        assert cum.value_at("Nobody", 19, 5) == 0

    def test_matches_partitioned_query(self, setup):
        rel, view, _ = setup
        from repro.query import TemporalQuery

        expected = (
            TemporalQuery(rel)
            .aggregate("sum")
            .partition_by(lambda row: row.payload["patient"])
            .at(19)
        )
        assert view.values_at(19) == expected
