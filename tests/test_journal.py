"""Crash-consistency tests for the pager's rollback journal.

Crashes are simulated by abandoning a pager/store mid-transaction
(without close/commit) and reopening the files: recovery must roll the
page file back to the last committed snapshot, bit for bit.
"""

import os

import pytest

from repro import Interval, SBTree, check_tree
from repro.storage import PagedNodeStore, Pager


class TestPagerJournal:
    def test_journal_created_and_cleared(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        pid = pager.allocate_page()
        pager.commit()
        assert not os.path.exists(pager.journal_path)
        pager.write_page(pid, b"second")
        assert os.path.exists(pager.journal_path)
        assert pager.in_transaction()
        pager.commit()
        assert not os.path.exists(pager.journal_path)
        assert not pager.in_transaction()
        pager.close()

    def test_uncommitted_write_rolled_back(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        pid = pager.allocate_page()
        pager.write_page(pid, b"committed")
        pager.commit()
        pager.write_page(pid, b"uncommitted")
        pager._file.flush()  # data hit the file, but no commit
        pager._file.close()  # simulated crash (no close() bookkeeping)

        recovered = Pager(path, journaled=True)
        assert recovered.read_page(pid).rstrip(b"\x00") == b"committed"
        recovered.close()

    def test_new_pages_truncated_on_rollback(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        pager.allocate_page()
        pager.commit()
        committed_pages = pager.page_count
        for _ in range(5):
            pager.allocate_page()
        pager._file.flush()
        pager._file.close()  # crash with 5 uncommitted new pages

        recovered = Pager(path, journaled=True)
        assert recovered.page_count == committed_pages
        assert os.path.getsize(path) == committed_pages * 512
        recovered.close()

    def test_header_changes_rolled_back(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        pid = pager.allocate_page()
        pager.set_root(pid)
        pager.set_meta("kind", "sum")
        pager.commit()
        pager.set_meta("kind", "avg")  # uncommitted header change
        pager._file.flush()
        pager._file.close()

        recovered = Pager(path, journaled=True)
        assert recovered.get_meta("kind") == "sum"
        assert recovered.get_root() == pid
        recovered.close()

    def test_torn_journal_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        a = pager.allocate_page()
        b = pager.allocate_page()
        pager.write_page(a, b"A1")
        pager.write_page(b, b"B1")
        pager.commit()
        pager.write_page(a, b"A2")
        pager.write_page(b, b"B2")
        pager._file.flush()
        if pager._journal_file is not None:
            pager._journal_file.flush()
        pager._file.close()
        # Tear the journal: chop the last record in half.
        size = os.path.getsize(pager.journal_path)
        with open(pager.journal_path, "r+b") as j:
            j.truncate(size - 200)

        recovered = Pager(path, journaled=True)
        # The complete record (page a) must be restored.
        assert recovered.read_page(a).rstrip(b"\x00") == b"A1"
        recovered.close()

    def test_clean_close_commits(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        pager = Pager(path, page_size=512, journaled=True)
        pid = pager.allocate_page()
        pager.write_page(pid, b"final")
        pager.close()  # clean shutdown commits
        assert not os.path.exists(path + "-journal")
        with Pager(path, journaled=True) as reopened:
            assert reopened.read_page(pid).rstrip(b"\x00") == b"final"

    def test_unjournaled_pager_never_journals(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with Pager(path, page_size=512) as pager:
            pid = pager.allocate_page()
            pager.write_page(pid, b"x")
            assert not os.path.exists(path + "-journal")


class TestStoreCrashRecovery:
    def build_store(self, path):
        store = PagedNodeStore(
            path, "sum", page_size=1024, buffer_capacity=16, journaled=True
        )
        tree = SBTree("sum", store, branching=6, leaf_capacity=6)
        return store, tree

    def test_tree_rolls_back_to_committed_snapshot(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        store, tree = self.build_store(path)
        committed_facts = [(i % 5 + 1, Interval(i * 4, i * 4 + 20)) for i in range(40)]
        for value, interval in committed_facts:
            tree.insert(value, interval)
        store.commit()
        committed_table = tree.to_table()

        # More uncommitted work, then a crash.
        for i in range(40, 80):
            tree.insert(2, Interval(i * 4, i * 4 + 20))
        store.buffer.flush()  # dirty pages reach the file...
        store.pager._file.flush()
        store.pager._file.close()  # ...but the transaction never commits

        with PagedNodeStore(path, journaled=True) as recovered_store:
            recovered = SBTree(store=recovered_store)
            assert recovered.to_table() == committed_table
            check_tree(recovered)
            # The recovered tree is fully usable.
            recovered.insert(9, Interval(0, 5))
            assert recovered.lookup(1) == committed_table.value_at(1) + 9

    def test_crash_before_any_commit_leaves_empty_tree(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        store, tree = self.build_store(path)
        store.commit()  # commit the empty tree
        for i in range(30):
            tree.insert(1, Interval(i, i + 10))
        store.buffer.flush()
        store.pager._file.flush()
        store.pager._file.close()

        with PagedNodeStore(path, journaled=True) as recovered_store:
            recovered = SBTree(store=recovered_store)
            assert recovered.to_table().rows == []

    def test_multiple_commit_points(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        store, tree = self.build_store(path)
        tree.insert(1, Interval(0, 10))
        store.commit()
        tree.insert(2, Interval(5, 15))
        store.commit()
        snapshot = tree.to_table()
        tree.insert(3, Interval(7, 12))  # never committed
        store.buffer.flush()
        store.pager._file.flush()
        store.pager._file.close()

        with PagedNodeStore(path, journaled=True) as recovered_store:
            recovered = SBTree(store=recovered_store)
            assert recovered.to_table() == snapshot
