"""Tests for the baseline algorithms: every one must match the oracle,
and all mutually agree with the SB-tree on identical inputs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Interval, SBTree
from repro.baselines import (
    AggregationTree,
    KOrderedAggregationTree,
    RedBlackTree,
    aggregation_tree,
    balanced_tree,
    bucket,
    endpoint_sort,
    merge_sort,
    naive,
)
from repro.core import reference
from repro.workloads import PRESCRIPTIONS, prescription_facts

times = st.integers(min_value=0, max_value=120)
values = st.integers(min_value=-9, max_value=9)


@st.composite
def intervals(draw):
    start = draw(times)
    return Interval(start, start + draw(st.integers(min_value=1, max_value=60)))


facts_lists = st.lists(st.tuples(values, intervals()), min_size=0, max_size=20)

ONE_SHOT_INVERTIBLE = [naive.compute, endpoint_sort.compute, balanced_tree.compute,
                       aggregation_tree.compute, bucket.compute]
ONE_SHOT_MINMAX = [naive.compute, merge_sort.compute, aggregation_tree.compute,
                   bucket.compute]


# ----------------------------------------------------------------------
# Red-black tree substrate
# ----------------------------------------------------------------------
class TestRedBlackTree:
    @given(keys=st.lists(st.integers(0, 10_000), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_sorted_iteration_and_invariants(self, keys):
        tree = RedBlackTree()
        for k in keys:
            tree.insert(k, k * 2)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(set(keys))
        assert len(tree) == len(set(keys))

    def test_duplicate_combination(self):
        tree = RedBlackTree()
        tree.insert(5, 10, combine=lambda a, b: a + b)
        tree.insert(5, 7, combine=lambda a, b: a + b)
        assert tree.get(5) == 17
        assert len(tree) == 1

    def test_get_default(self):
        tree = RedBlackTree()
        assert tree.get(42) is None
        assert tree.get(42, "missing") == "missing"

    def test_sorted_insertion_stays_balanced(self):
        tree = RedBlackTree()
        for k in range(1000):
            tree.insert(k, k)
        # A degenerate BST would have black height ~1; RB must be O(log n).
        assert tree.check_invariants() >= 5


# ----------------------------------------------------------------------
# One-shot algorithms vs the oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", ONE_SHOT_INVERTIBLE)
@pytest.mark.parametrize("kind", ["sum", "count", "avg"])
@given(facts=facts_lists)
@settings(max_examples=25, deadline=None)
def test_invertible_one_shots_match_oracle(algo, kind, facts):
    assert algo(facts, kind) == reference.instantaneous_table(facts, kind)


@pytest.mark.parametrize("algo", ONE_SHOT_MINMAX)
@pytest.mark.parametrize("kind", ["min", "max"])
@given(facts=facts_lists)
@settings(max_examples=25, deadline=None)
def test_minmax_one_shots_match_oracle(algo, kind, facts):
    assert algo(facts, kind) == reference.instantaneous_table(facts, kind)


@pytest.mark.parametrize("algo", ONE_SHOT_INVERTIBLE)
def test_one_shots_reproduce_figure3(algo):
    got = algo(prescription_facts(), "sum")
    assert [(v, (i.start, i.end)) for v, i in got] == [
        (2, (5, 10)),
        (8, (10, 15)),
        (6, (15, 20)),
        (7, (20, 30)),
        (4, (30, 35)),
        (8, (35, 40)),
        (5, (40, 45)),
        (1, (45, 50)),
    ]


@pytest.mark.parametrize("kind", ["sum", "avg", "min", "max"])
@given(facts=facts_lists)
@settings(max_examples=20, deadline=None)
def test_all_algorithms_mutually_agree(kind, facts):
    algos = ONE_SHOT_INVERTIBLE if kind in ("sum", "avg") else ONE_SHOT_MINMAX
    tables = [algo(facts, kind) for algo in algos]
    for table in tables[1:]:
        assert table == tables[0]


def test_endpoint_sort_rejects_minmax():
    with pytest.raises(ValueError):
        endpoint_sort.compute([], "min")
    with pytest.raises(ValueError):
        balanced_tree.compute([], "max")


def test_endpoint_sort_first_marks_match_paper():
    """Appendix A: the first three combined marks for Prescription are
    <2,5>, <6,10>, <-2,15>."""
    from repro.core.values import spec_for

    spec = spec_for("sum")
    marks = endpoint_sort.generate_marks(
        [(v, i) for v, i in prescription_facts()], spec
    )
    marks.sort(key=lambda m: m[0])
    combined = []
    for t, e in marks:
        if combined and combined[-1][0] == t:
            combined[-1] = (t, spec.acc(combined[-1][1], e))
        else:
            combined.append((t, e))
    assert combined[:3] == [(5, 2), (10, 6), (15, -2)]


# ----------------------------------------------------------------------
# Aggregation tree (incremental)
# ----------------------------------------------------------------------
class TestAggregationTree:
    @given(facts=facts_lists, t=times)
    @settings(max_examples=40, deadline=None)
    def test_incremental_lookup(self, facts, t):
        tree = AggregationTree("sum")
        for value, interval in facts:
            tree.insert(value, interval)
        assert tree.lookup(t) == reference.instantaneous_value(facts, "sum", t)

    @given(facts=facts_lists)
    @settings(max_examples=30, deadline=None)
    def test_insert_then_delete_roundtrip(self, facts):
        tree = AggregationTree("sum")
        for value, interval in facts:
            tree.insert(value, interval)
        for value, interval in facts:
            tree.delete(value, interval)
        assert tree.to_table().rows == []

    def test_sorted_inserts_degenerate_depth(self):
        """The KS95 worst case: ordered arrivals build a spine."""
        tree = AggregationTree("count")
        n = 200
        for i in range(n):
            tree.insert(1, Interval(i, i + 5))
        balanced = SBTree("count", branching=8, leaf_capacity=8)
        assert tree.depth() > n / 2  # essentially linear
        for i in range(n):
            balanced.insert(1, Interval(i, i + 5))
        assert balanced.height < 8  # logarithmic

    def test_matches_sbtree_contents(self):
        tree = AggregationTree("avg")
        sb = SBTree("avg", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
            sb.insert(p.dosage, p.valid)
        assert tree.to_table() == sb.to_table()

    def test_lookup_outside_domain(self):
        tree = AggregationTree("sum", lo=0, hi=100)
        with pytest.raises(KeyError):
            tree.lookup(-1)


# ----------------------------------------------------------------------
# k-ordered aggregation tree
# ----------------------------------------------------------------------
class TestKOrderedAggregationTree:
    def test_results_match_oracle_for_ordered_stream(self):
        facts = [(1, Interval(i, i + 10)) for i in range(100)]
        tree = KOrderedAggregationTree("count", k=0)
        for value, interval in facts:
            tree.insert(value, interval)
        assert tree.to_table() == reference.instantaneous_table(facts, "count")

    def test_garbage_collection_bounds_memory(self):
        tree = KOrderedAggregationTree("count", k=2)
        unbounded = AggregationTree("count")
        for i in range(500):
            tree.insert(1, Interval(i, i + 5))
            unbounded.insert(1, Interval(i, i + 5))
        assert tree.live_node_count < 40
        assert unbounded.node_count > 500

    def test_k_disorder_tolerated(self):
        import random

        rng = random.Random(7)
        starts = list(range(200))
        # Perturb each position by at most k.
        k = 4
        for i in range(0, len(starts) - k, k):
            chunk = starts[i : i + k]
            rng.shuffle(chunk)
            starts[i : i + k] = chunk
        facts = [(1, Interval(s, s + 8)) for s in starts]
        tree = KOrderedAggregationTree("count", k=k)
        for value, interval in facts:
            tree.insert(value, interval)
        assert tree.to_table() == reference.instantaneous_table(facts, "count")

    def test_finalized_instants_not_indexable(self):
        tree = KOrderedAggregationTree("count", k=0)
        for i in range(50):
            tree.insert(1, Interval(i, i + 5))
        with pytest.raises(KeyError):
            tree.lookup(3)  # long since finalized and collected

    def test_order_violation_rejected(self):
        tree = KOrderedAggregationTree("count", k=0)
        for i in range(10):
            tree.insert(1, Interval(i * 10, i * 10 + 5))
        with pytest.raises(ValueError):
            tree.insert(1, Interval(0, 4))


# ----------------------------------------------------------------------
# Bucket algorithm specifics
# ----------------------------------------------------------------------
class TestBucketAlgorithm:
    @given(facts=facts_lists, nb=st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_bucket_count_does_not_change_results(self, facts, nb):
        got = bucket.compute(facts, "sum", num_buckets=nb)
        assert got == reference.instantaneous_table(facts, "sum")

    def test_long_tuples_go_to_meta_array(self):
        facts = [
            (1, Interval(0, 100)),  # spans everything -> meta
            (2, Interval(5, 9)),
            (3, Interval(91, 99)),
        ]
        lo, hi = 0, 100
        edges = [lo + i * 10.0 for i in range(10)] + [hi]
        buckets, meta = bucket.partition(facts, edges)
        assert len(meta) == 1
        assert meta[0][0] == 1
        assert sum(len(b) for b in buckets) == 2

    def test_parallel_map_fn(self):
        from concurrent.futures import ThreadPoolExecutor

        facts = prescription_facts()
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = bucket.compute(facts, "sum", num_buckets=4, map_fn=pool.map)
        assert got == reference.instantaneous_table(facts, "sum")
