"""Property-based tests: SB-trees against the brute-force oracle.

Random insert/delete workloads are replayed into an SB-tree and the
simple reference implementation; lookups, range queries and full
reconstructions must agree, and every structural invariant of
Section 3 must hold after every operation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Interval, SBTree, check_tree
from repro.core import reference

INVERTIBLE = ("sum", "count", "avg")
ALL_KINDS = ("sum", "count", "avg", "min", "max")

times = st.integers(min_value=0, max_value=120)
values = st.integers(min_value=-9, max_value=9)


@st.composite
def intervals(draw):
    start = draw(times)
    length = draw(st.integers(min_value=1, max_value=60))
    return Interval(start, start + length)


@st.composite
def workloads(draw, with_deletes: bool):
    """A sequence of facts to insert, and which of them to later delete."""
    facts = draw(st.lists(st.tuples(values, intervals()), min_size=0, max_size=24))
    if not with_deletes or not facts:
        return facts, []
    delete_indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(facts) - 1),
            unique=True,
            max_size=len(facts),
        )
    )
    return facts, delete_indices


def apply_workload(kind, facts, delete_indices, b=4, l=4):
    tree = SBTree(kind, branching=b, leaf_capacity=l)
    for value, interval in facts:
        tree.insert(value, interval)
    for i in delete_indices:
        value, interval = facts[i]
        tree.delete(value, interval)
    live = [f for i, f in enumerate(facts) if i not in set(delete_indices)]
    return tree, live


@pytest.mark.parametrize("kind", INVERTIBLE)
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_insert_delete_matches_oracle(kind, data):
    facts, deletes = data.draw(workloads(with_deletes=True))
    tree, live = apply_workload(kind, facts, deletes)
    check_tree(tree)
    assert tree.to_table() == reference.instantaneous_table(live, kind)


@pytest.mark.parametrize("kind", ("min", "max"))
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_min_max_insert_matches_oracle(kind, data):
    facts, _ = data.draw(workloads(with_deletes=False))
    tree, live = apply_workload(kind, facts, [])
    check_tree(tree)  # compactness not required for MIN/MAX
    tree.compact()
    check_tree(tree, check_compact=True)
    assert tree.to_table() == reference.instantaneous_table(live, kind)


@pytest.mark.parametrize("kind", ALL_KINDS)
@given(data=st.data(), t=times)
@settings(max_examples=40, deadline=None)
def test_lookup_matches_oracle(kind, data, t):
    facts, _ = data.draw(workloads(with_deletes=False))
    tree, live = apply_workload(kind, facts, [])
    assert tree.lookup(t) == reference.instantaneous_value(live, kind, t)


@pytest.mark.parametrize("kind", INVERTIBLE)
@given(data=st.data(), window=intervals())
@settings(max_examples=40, deadline=None)
def test_range_query_matches_oracle(kind, data, window):
    facts, deletes = data.draw(workloads(with_deletes=True))
    tree, live = apply_workload(kind, facts, deletes)
    got = tree.range_query(window).coalesce(tree.spec.eq)
    want = (
        reference.instantaneous_table(live, kind, drop_initial=False)
        .restrict(window)
        .coalesce()
    )
    assert got == want


@pytest.mark.parametrize("b,l", [(4, 4), (4, 6), (6, 4), (8, 8), (5, 7)])
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_branching_factors_do_not_change_results(b, l, data):
    facts, deletes = data.draw(workloads(with_deletes=True))
    tree, live = apply_workload("sum", facts, deletes, b=b, l=l)
    check_tree(tree)
    assert tree.to_table() == reference.instantaneous_table(live, "sum")


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_full_roundtrip_returns_to_empty(data):
    facts, _ = data.draw(workloads(with_deletes=False))
    tree = SBTree("sum", branching=4, leaf_capacity=4)
    for value, interval in facts:
        tree.insert(value, interval)
    for value, interval in reversed(facts):
        tree.delete(value, interval)
    check_tree(tree)
    assert tree.to_table().rows == []
    assert tree.node_count() == 1


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_interleaved_insert_delete(data):
    """Deletes interleaved with inserts, validated step by step."""
    ops = data.draw(
        st.lists(st.tuples(values, intervals()), min_size=1, max_size=16)
    )
    tree = SBTree("count", branching=4, leaf_capacity=4)
    live = []
    for i, (value, interval) in enumerate(ops):
        if i % 3 == 2 and live:
            victim = live.pop(i % len(live))
            tree.delete(victim[0], victim[1])
        else:
            tree.insert(value, interval)
            live.append((value, interval))
        check_tree(tree)
        assert tree.to_table() == reference.instantaneous_table(live, "count")
