"""Crash-consistency tests: the :mod:`repro.crashcheck` harness over the
journaled page store, plus stateful multi-view checkpoint crashes for the
warehouse (a crash between committing view N and view N+1 must leave
every view individually recoverable to a committed snapshot)."""

import pytest

from repro import crashcheck
from repro.core import reference
from repro.core.intervals import Interval
from repro.core.sbtree import SBTree
from repro.core.validate import check_tree
from repro.faults import FaultInjector, SimulatedCrash, simulate_crash
from repro.storage import PagedNodeStore
from repro.storage.pager import Pager
from repro.warehouse import TemporalWarehouse


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sample_sweeps(tmp_path_factory):
    """First/middle/last-occurrence sweep of every workload, run once."""
    workdir = tmp_path_factory.mktemp("crashcheck")
    return {
        name: crashcheck.sweep(name, str(workdir), hits="sample")
        for name in sorted(crashcheck.WORKLOADS)
    }


class TestCrashCheckSweep:
    @pytest.mark.parametrize("workload", sorted(crashcheck.WORKLOADS))
    def test_every_recovery_matches_the_oracle(self, sample_sweeps, workload):
        results = sample_sweeps[workload]
        assert results, "sweep produced no cases"
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(str(r) for r in failures)
        assert any(r.crashed for r in results)

    def test_all_crash_points_exercised(self, sample_sweeps):
        crashed = {
            r.point
            for results in sample_sweeps.values()
            for r in results
            if r.crashed
        }
        assert crashed == set(Pager.CRASH_POINTS)

    def test_exhausted_point_finishes_without_crashing(self, tmp_path):
        result = crashcheck.run_case(
            str(tmp_path / "x.sbt"), "insert", "before_commit_fsync", hit=10_000
        )
        assert not result.crashed
        assert result.ok

    def test_hit_schedule(self):
        assert crashcheck._hit_schedule(5, "all") == [1, 2, 3, 4, 5]
        assert crashcheck._hit_schedule(5, "sample") == [1, 3, 5]
        assert crashcheck._hit_schedule(1, "sample") == [1]
        assert crashcheck._hit_schedule(4, 2) == [1, 2]
        assert crashcheck._hit_schedule(0, "all") == []

    def test_main_exits_zero_on_success(self, capsys):
        assert crashcheck.main(["--workload", "commit", "--hits", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 failures" in out

    def test_main_rejects_bad_hits(self):
        with pytest.raises(SystemExit):
            crashcheck.main(["--hits", "sometimes"])


# ----------------------------------------------------------------------
# Warehouse: multi-view checkpoint crashes (stateful)
# ----------------------------------------------------------------------
BASE_FACTS = [(2, Interval(0, 10)), (3, Interval(5, 20)), (1, Interval(8, 30))]
MORE_FACTS = [(4, Interval(12, 25)), (2, Interval(18, 40)), (5, Interval(3, 9))]

VIEW_KINDS = {"v1": "sum", "v2": "count"}


def _build_warehouse(directory):
    """Two journaled views over one table, checkpointed at BASE_FACTS,
    with MORE_FACTS maintained but not yet durable."""
    wh = TemporalWarehouse(str(directory))
    rel = wh.create_table("rx")
    for name, kind in VIEW_KINDS.items():
        wh.create_view(name, "rx", kind, persistent=True, journaled=True)
    for value, interval in BASE_FACTS:
        rel.insert(value, interval)
    wh.checkpoint()
    for value, interval in MORE_FACTS:
        rel.insert(value, interval)
    stores = [
        store
        for name in VIEW_KINDS
        for store in TemporalWarehouse._stores_of(wh.view(name))
    ]
    return wh, stores


def _oracle(name, which):
    facts = BASE_FACTS if which == "base" else BASE_FACTS + MORE_FACTS
    return reference.instantaneous_table(facts, VIEW_KINDS[name])


def _recovered_table(path):
    """Reopen one view's page file directly (journal rollback included)."""
    store = PagedNodeStore(str(path), journaled=True)
    tree = SBTree(store=store)
    try:
        table = tree.to_table()
        check_tree(tree)
        return table
    finally:
        store.close()


class TestWarehouseCheckpointCrash:
    @pytest.mark.parametrize(
        "point,hit,expected",
        [
            # Crash inside v1's own commit, before its commit point:
            # nothing of the second batch survives anywhere.
            ("before_commit_fsync", 1, {"v1": "base", "v2": "base"}),
            ("before_journal_delete", 1, {"v1": "base", "v2": "base"}),
            # v1's journal deletion is its commit point: crashing right
            # after it (or anywhere inside v2's commit) leaves v1 with
            # the new snapshot and v2 rolled back to the old one.
            ("after_journal_delete", 1, {"v1": "new", "v2": "base"}),
            ("before_commit_fsync", 2, {"v1": "new", "v2": "base"}),
            ("after_commit_fsync", 2, {"v1": "new", "v2": "base"}),
            ("before_journal_delete", 2, {"v1": "new", "v2": "base"}),
        ],
    )
    def test_crash_between_view_commits(self, tmp_path, point, hit, expected):
        wh, stores = _build_warehouse(tmp_path)
        injector = FaultInjector().crash_at(point, hit=hit)
        for store in stores:
            store.pager.faults = injector  # shared: hit counts span views
        with pytest.raises(SimulatedCrash):
            wh.checkpoint()
        for store in stores:
            simulate_crash(store)
        for name, which in expected.items():
            recovered = _recovered_table(tmp_path / f"{name}.sbt")
            assert recovered == _oracle(name, which), (
                f"view {name} did not recover to its {which} snapshot "
                f"after a crash at {point} hit {hit}"
            )

    def test_every_checkpoint_crash_point_leaves_committed_views(self, tmp_path):
        """Mini-sweep: crash the two-view checkpoint at every occurrence
        of every crash point; each view must recover to one of its two
        committed snapshots -- never a blend."""
        wh, stores = _build_warehouse(tmp_path / "dry")
        counter = FaultInjector().disarm()
        for store in stores:
            store.pager.faults = counter
        wh.checkpoint()
        occurrences = dict(counter.hits)  # before close() adds its own hits
        for store in stores:
            store.pager.faults = None
        wh.close()
        assert occurrences, "checkpoint hit no crash points"

        legal = {
            name: (_oracle(name, "base"), _oracle(name, "new"))
            for name in VIEW_KINDS
        }
        case = 0
        for point, total in sorted(occurrences.items()):
            for hit in crashcheck._hit_schedule(total, "sample"):
                case += 1
                workdir = tmp_path / f"case-{case}"
                wh, stores = _build_warehouse(workdir)
                injector = FaultInjector(seed=case).crash_at(point, hit=hit)
                for store in stores:
                    store.pager.faults = injector
                with pytest.raises(SimulatedCrash):
                    wh.checkpoint()
                for store in stores:
                    simulate_crash(store)
                for name in VIEW_KINDS:
                    recovered = _recovered_table(workdir / f"{name}.sbt")
                    assert recovered in legal[name], (
                        f"view {name} recovered to an uncommitted blend "
                        f"after a crash at {point} hit {hit}"
                    )
