"""Tests for history retention (retain_after) and grouped warehouse views."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Interval, NEG_INF, SBTree, check_tree
from repro.core import reference
from repro.warehouse import TemporalWarehouse
from repro.workloads import PRESCRIPTIONS, prescription_facts


class TestRetainAfter:
    def build(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
        return tree

    def test_archives_old_history(self):
        tree = self.build()
        archived = tree.retain_after(30)
        # The archive holds Figure 3's first four rows (clipped at 30).
        assert [(v, (i.start, i.end)) for v, i in archived] == [
            (2, (5, 10)),
            (8, (10, 15)),
            (6, (15, 20)),
            (7, (20, 30)),
        ]

    def test_recent_history_intact(self):
        tree = self.build()
        expected = reference.instantaneous_table(prescription_facts(), "sum")
        tree.retain_after(30)
        for t in range(30, 55):
            try:
                want = expected.value_at(t)
            except KeyError:
                want = 0
            assert tree.lookup(t) == want

    def test_old_instants_become_initial(self):
        tree = self.build()
        tree.retain_after(30)
        for t in (-100, 5, 12, 29):
            assert tree.lookup(t) == 0

    def test_structure_stays_sound_and_maintainable(self):
        tree = self.build()
        tree.retain_after(30)
        check_tree(tree)
        tree.insert(5, Interval(35, 60))
        assert tree.lookup(36) == 13  # 8 (Figure 3) + 5
        check_tree(tree)

    def test_cutoff_must_be_finite(self):
        with pytest.raises(ValueError):
            self.build().retain_after(NEG_INF)

    def test_cutoff_beyond_all_data(self):
        tree = self.build()
        archived = tree.retain_after(1_000)
        assert len(archived) == 8  # the full Figure 3
        assert tree.to_table().rows == []
        assert tree.node_count() == 1

    @given(cutoff=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_archive_plus_rest_is_the_whole(self, cutoff):
        tree = self.build()
        whole = tree.range_query(Interval(NEG_INF, float("inf"))).coalesce(
            tree.spec.eq
        )
        archived = tree.retain_after(cutoff)
        kept = tree.to_table()
        for value, interval in archived:
            assert whole.value_at(interval.start) == value
        for value, interval in kept:
            assert whole.value_at(interval.start) == value


class TestRetainAfterUnderChurn:
    @given(
        cutoff=st.integers(10, 50),
        post_ops=st.lists(
            st.tuples(st.integers(-5, 9), st.integers(0, 80), st.integers(1, 40)),
            max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_updates_after_retention_stay_consistent(self, cutoff, post_ops):
        """The retained tree remains a correct index for new effects.

        New effects may even reach back before the cutoff; the tree
        simply treats the erased region as having been empty.
        """
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
        tree.retain_after(cutoff)
        # Model: original facts clipped at the cutoff...
        model = []
        for p in PRESCRIPTIONS:
            clipped = p.valid.intersection(Interval(cutoff, 10_000))
            if clipped is not None:
                model.append((p.dosage, clipped))
        # ...plus the new facts, unclipped.
        for value, start, length in post_ops:
            interval = Interval(start, start + length)
            tree.insert(value, interval)
            model.append((value, interval))
        check_tree(tree)
        assert tree.to_table() == reference.instantaneous_table(model, "sum")


class TestRetainAfterMSB:
    def test_annotations_rebuilt_after_retention(self):
        from repro import MSBTree
        from repro.core import reference

        msb = MSBTree("max", branching=4, leaf_capacity=4)
        facts = [(i % 9, Interval(i * 3, i * 3 + 12)) for i in range(60)]
        for value, interval in facts:
            msb.insert(value, interval)
        msb.retain_after(90)
        check_tree(msb)  # u-annotations audited
        clipped = [
            (v, Interval(max(i.start, 90), i.end))
            for v, i in facts
            if i.end > 90
        ]
        for t in range(90, 200, 7):
            for w in (0, 20):
                want = reference.cumulative_value(
                    clipped, "max", t, min(w, t - 90)
                )
                # Window clamped at the cutoff: history before 90 is gone.
                got = msb.window_lookup(t, w)
                if t - w >= 90:
                    assert got == reference.cumulative_value(clipped, "max", t, w)


class TestWarehouseGroupedViews:
    def test_create_grouped_view(self):
        wh = TemporalWarehouse()
        rel = wh.create_table("prescription")
        grouped = wh.create_grouped_view(
            "ByPatient", "prescription", "sum",
            key_of=lambda row: row.payload["patient"],
            branching=4, leaf_capacity=4,
        )
        for p in PRESCRIPTIONS:
            rel.insert(p.dosage, p.valid, patient=p.patient)
        assert grouped.value_at("Amy", 19) == 2
        assert wh.view("ByPatient") is grouped

    def test_duplicate_name_rejected(self):
        wh = TemporalWarehouse()
        wh.create_table("t")
        wh.create_view("v", "t", "sum")
        with pytest.raises(ValueError):
            wh.create_grouped_view("v", "t", "sum", key_of=lambda r: 0)

    def test_close_handles_grouped_views(self):
        wh = TemporalWarehouse()
        rel = wh.create_table("t")
        wh.create_grouped_view(
            "g", "t", "sum", key_of=lambda row: row.value % 2,
            branching=4, leaf_capacity=4,
        )
        rel.insert(1, Interval(0, 10))
        rel.insert(2, Interval(5, 15))
        wh.checkpoint()
        wh.close()  # must not raise on the grouped view's stores
