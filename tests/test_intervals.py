"""Unit tests for the interval algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import Interval, NEG_INF, POS_INF
from repro.core.intervals import coalesce_pairs, is_finite


class TestConstruction:
    def test_valid(self):
        i = Interval(5, 10)
        assert i.start == 5 and i.end == 10

    @pytest.mark.parametrize("start,end", [(5, 5), (10, 5), (0, 0)])
    def test_empty_or_inverted_rejected(self, start, end):
        with pytest.raises(ValueError):
            Interval(start, end)

    def test_unbounded(self):
        assert Interval(NEG_INF, 5).start == -math.inf
        assert Interval(5, POS_INF).end == math.inf
        assert Interval(NEG_INF, POS_INF).length == math.inf

    def test_is_finite(self):
        assert is_finite(0) and is_finite(-5.5)
        assert not is_finite(NEG_INF) and not is_finite(POS_INF)

    def test_is_bounded(self):
        assert Interval(1, 2).is_bounded
        assert not Interval(NEG_INF, 2).is_bounded


class TestPredicates:
    def test_contains_half_open(self):
        i = Interval(5, 10)
        assert i.contains(5)
        assert i.contains(9)
        assert not i.contains(10)
        assert not i.contains(4)
        assert 7 in i

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 15))  # touching
        assert Interval(0, 100).overlaps(Interval(40, 50))

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(0, 10))
        assert Interval(0, 10).covers(Interval(3, 7))
        assert not Interval(0, 10).covers(Interval(3, 11))

    def test_meets(self):
        assert Interval(0, 5).meets(Interval(5, 9))
        assert not Interval(0, 5).meets(Interval(6, 9))

    def test_window_overlap_is_closed_on_both_ends(self):
        # [5, 15) vs closed [15, 20]: 15 not in the tuple interval.
        assert not Interval(5, 15).overlaps_window(15, 20)
        # [5, 15) vs closed [14, 20]: instant 14 is shared.
        assert Interval(5, 15).overlaps_window(14, 20)
        # [20, 25) vs closed [10, 20]: instant 20 is shared.
        assert Interval(20, 25).overlaps_window(10, 20)

    def test_within_window(self):
        assert Interval(5, 10).within_window(5, 10)
        assert not Interval(5, 11).within_window(5, 10)


class TestCombinators:
    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 10).intersection(Interval(10, 15)) is None

    def test_shifted_and_extended(self):
        assert Interval(5, 10).shifted(3) == Interval(8, 13)
        assert Interval(5, 10).extended(4) == Interval(5, 14)
        with pytest.raises(ValueError):
            Interval(5, 10).extended(-1)

    def test_extend_infinite_end(self):
        assert Interval(5, POS_INF).extended(4) == Interval(5, POS_INF)


class TestStr:
    def test_finite(self):
        assert str(Interval(5, 10)) == "[5, 10)"

    def test_unbounded(self):
        assert str(Interval(NEG_INF, 10)) == "(-inf, 10)"
        assert str(Interval(5, POS_INF)) == "[5, inf)"


@given(
    a=st.integers(-100, 100),
    b=st.integers(-100, 100),
    c=st.integers(-100, 100),
    d=st.integers(-100, 100),
)
def test_overlap_symmetry_and_intersection_consistency(a, b, c, d):
    if not (a < b and c < d):
        return
    x, y = Interval(a, b), Interval(c, d)
    assert x.overlaps(y) == y.overlaps(x)
    assert (x.intersection(y) is not None) == x.overlaps(y)
    if x.overlaps(y):
        assert x.intersection(y) == y.intersection(x)


class TestCoalescePairs:
    def test_merges_touching_equal(self):
        pairs = [(1, Interval(0, 5)), (1, Interval(5, 10)), (2, Interval(10, 12))]
        assert list(coalesce_pairs(pairs)) == [
            (1, Interval(0, 10)),
            (2, Interval(10, 12)),
        ]

    def test_keeps_gapped_equal(self):
        pairs = [(1, Interval(0, 5)), (1, Interval(6, 10))]
        assert list(coalesce_pairs(pairs)) == pairs

    def test_custom_equality(self):
        pairs = [((1, 2), Interval(0, 5)), ((1.0, 2.0), Interval(5, 10))]
        merged = list(coalesce_pairs(pairs, equal=lambda a, b: a == b))
        assert len(merged) == 1

    def test_empty(self):
        assert list(coalesce_pairs([])) == []
