"""Stateful model-based testing of the pager (allocate/write/free/reopen)."""

import os
import tempfile

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.storage import Pager

payloads = st.binary(min_size=0, max_size=400)


class PagerMachine(RuleBasedStateMachine):
    """The model is a dict page_id -> payload plus a free set."""

    def __init__(self):
        super().__init__()
        self._dir = tempfile.mkdtemp(prefix="pager-machine-")
        self.path = os.path.join(self._dir, "pages.db")
        self.pager = Pager(self.path, page_size=512)
        self.model = {}

    @rule(payload=payloads)
    def allocate_and_write(self, payload):
        page_id = self.pager.allocate_page()
        assert page_id not in self.model, "allocator handed out a live page"
        self.pager.write_page(page_id, payload)
        self.model[page_id] = payload

    @precondition(lambda self: self.model)
    @rule(data=st.data(), payload=payloads)
    def overwrite(self, data, payload):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        self.pager.write_page(page_id, payload)
        self.model[page_id] = payload

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def free(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        self.pager.free_page(page_id)
        del self.model[page_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def read_matches_model(self, data):
        page_id = data.draw(st.sampled_from(sorted(self.model)))
        stored = self.pager.read_page(page_id)
        expected = self.model[page_id]
        assert stored[: len(expected)] == expected
        assert stored[len(expected):] == b"\x00" * (len(stored) - len(expected))

    @rule(key=st.sampled_from(["alpha", "beta"]), value=st.text(
        alphabet=st.characters(blacklist_characters="\n=", min_codepoint=32,
                               max_codepoint=126), max_size=20))
    def set_meta(self, key, value):
        self.pager.set_meta(key, value)
        assert self.pager.get_meta(key) == value

    @rule()
    def reopen(self):
        self.pager.close()
        self.pager = Pager(self.path)
        for page_id, expected in self.model.items():
            assert self.pager.read_page(page_id)[: len(expected)] == expected

    @invariant()
    def live_count_matches_model(self):
        assert self.pager.live_nodes == len(self.model)

    def teardown(self):
        self.pager.close()


TestPagerMachine = PagerMachine.TestCase
TestPagerMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
