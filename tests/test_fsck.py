"""Tests for the offline page-file auditor (:mod:`repro.storage.fsck`)
and the ``repro fsck`` CLI: seeded corruption of every class the auditor
claims to detect -- bad checksums, free-list cycles, orphan pages, torn
journals -- plus the ``--repair`` paths."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.intervals import Interval
from repro.core.sbtree import SBTree
from repro.faults import simulate_crash
from repro.storage import PagedNodeStore, Pager, fsck
from repro.storage.fsck import _write_free_page
from repro.storage.pager import _HEADER, NO_PAGE

PAGE_SIZE = 512

_HEADER_FIELDS = (
    "magic", "version", "page_size", "page_count",
    "free_head", "root", "live", "meta_len",
)


def make_tree_file(path, n=30, *, journaled=False):
    """A committed SB-tree page file with a few dozen pages."""
    store = PagedNodeStore(
        str(path), "sum", page_size=PAGE_SIZE, buffer_capacity=8,
        journaled=journaled,
    )
    tree = SBTree("sum", store, branching=4, leaf_capacity=4)
    for i in range(n):
        tree.insert(i % 5 + 1, Interval(i * 3, i * 3 + 10))
    store.close()
    return store.pager.page_count


def read_header(path):
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
    return dict(zip(_HEADER_FIELDS, _HEADER.unpack(raw)))


def patch_header(path, **fields):
    header = read_header(path)
    header.update(fields)
    with open(path, "r+b") as handle:
        handle.write(_HEADER.pack(*[header[name] for name in _HEADER_FIELDS]))


def flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def codes(report, severity=None):
    return {
        f.code
        for f in report.findings
        if severity is None or f.severity == severity
    }


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
class TestFsckAudit:
    def test_clean_file_is_ok(self, tmp_path):
        path = tmp_path / "clean.sbt"
        make_tree_file(path)
        report = fsck(str(path))
        assert report.ok
        assert not report.errors()
        assert report.reachable > 0
        assert report.orphans == [] and report.corrupt == []

    def test_missing_file(self, tmp_path):
        report = fsck(str(tmp_path / "nope.sbt"))
        assert not report.ok
        assert report.has("missing-file")

    def test_bad_checksum_detected(self, tmp_path):
        path = tmp_path / "bits.sbt"
        page_count = make_tree_file(path)
        victim = page_count - 1  # flip one payload byte of the last page
        flip_byte(str(path), victim * PAGE_SIZE + 50)
        report = fsck(str(path))
        assert not report.ok
        assert report.has("bad-checksum")
        assert victim in report.corrupt

    def test_free_list_cycle_detected(self, tmp_path):
        path = tmp_path / "cycle.sbt"
        page_count = make_tree_file(path)
        a, b = page_count, page_count + 1
        with open(path, "r+b") as handle:
            _write_free_page(handle, a, b, PAGE_SIZE)
            _write_free_page(handle, b, a, PAGE_SIZE)
        patch_header(str(path), free_head=a, page_count=page_count + 2)
        report = fsck(str(path))
        assert not report.ok
        assert report.has("free-list-cycle")

    def test_free_list_range_detected(self, tmp_path):
        path = tmp_path / "range.sbt"
        page_count = make_tree_file(path)
        patch_header(str(path), free_head=page_count + 7)
        report = fsck(str(path))
        assert not report.ok
        assert report.has("free-list-range")

    def test_reachable_free_detected(self, tmp_path):
        path = tmp_path / "double.sbt"
        make_tree_file(path)
        root = read_header(str(path))["root"]
        patch_header(str(path), free_head=root)
        report = fsck(str(path))
        assert not report.ok
        assert report.has("reachable-free")

    def test_orphan_page_detected(self, tmp_path):
        path = tmp_path / "orphan.sbt"
        make_tree_file(path)
        pager = Pager(str(path))
        orphan = pager.allocate_page()  # allocated, never linked anywhere
        pager.close()
        report = fsck(str(path))
        assert not report.ok
        assert report.has("orphan-page")
        assert orphan in report.orphans

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "trunc.sbt"
        page_count = make_tree_file(path)
        with open(path, "r+b") as handle:
            handle.truncate(page_count * PAGE_SIZE - PAGE_SIZE // 2)
        report = fsck(str(path))
        assert not report.ok
        assert report.has("truncated-file")


class TestFsckJournal:
    def crash_with_journal(self, path):
        """A store crashed mid-transaction, journal left behind."""
        make_tree_file(path, journaled=True)
        store = PagedNodeStore(str(path), journaled=True)
        tree = SBTree(store=store)
        for i in range(10):
            tree.insert(i + 1, Interval(i * 4, i * 4 + 15))
        store.buffer.flush()  # force overwrites: several journal records
        simulate_crash(store)
        journal = str(path) + "-journal"
        record = Pager._JOURNAL_RECORD.size + PAGE_SIZE
        import os

        assert os.path.getsize(journal) >= Pager._JOURNAL_HEADER.size + 2 * record
        return journal

    def test_intact_leftover_journal_is_informational(self, tmp_path):
        path = tmp_path / "crashed.sbt"
        self.crash_with_journal(path)
        report = fsck(str(path))
        assert report.ok  # every record verifies: recovery will succeed
        assert report.has("journal-present")
        assert report.journal_records >= 2

    def test_torn_journal_detected(self, tmp_path):
        path = tmp_path / "torn.sbt"
        journal = self.crash_with_journal(path)
        # Corrupt the pre-image inside record 2.
        record = Pager._JOURNAL_RECORD.size + PAGE_SIZE
        flip_byte(
            journal,
            Pager._JOURNAL_HEADER.size + record + Pager._JOURNAL_RECORD.size + 40,
        )
        report = fsck(str(path))
        assert not report.ok
        assert "torn-journal" in codes(report, "error")
        assert report.journal_records == 1  # rollback stops after record 1

    def test_truncated_journal_tail_is_a_warning(self, tmp_path):
        path = tmp_path / "tail.sbt"
        journal = self.crash_with_journal(path)
        import os

        with open(journal, "r+b") as handle:
            handle.truncate(os.path.getsize(journal) - 100)
        report = fsck(str(path))
        assert report.ok  # a torn tail is the normal crash signature
        assert "torn-journal" in codes(report, "warning")

    def test_legacy_journal_flagged(self, tmp_path):
        path = tmp_path / "legacy.sbt"
        make_tree_file(path)
        with open(str(path) + "-journal", "wb") as handle:
            handle.write(b"SBTRjrnl" + b"\x00" * 32)
        report = fsck(str(path))
        assert report.ok
        assert report.has("legacy-journal")


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
class TestFsckRepair:
    def test_repair_rebuilds_cyclic_free_list(self, tmp_path):
        path = tmp_path / "cycle.sbt"
        page_count = make_tree_file(path)
        a, b = page_count, page_count + 1
        with open(path, "r+b") as handle:
            _write_free_page(handle, a, b, PAGE_SIZE)
            _write_free_page(handle, b, a, PAGE_SIZE)
        patch_header(str(path), free_head=a, page_count=page_count + 2)
        report = fsck(str(path), repair=True)
        assert report.repaired
        assert report.ok
        assert report.pre_repair is not None
        assert report.pre_repair.has("free-list-cycle")
        assert report.free_pages == 2
        assert fsck(str(path)).ok  # a fresh audit agrees

    def test_repair_reclaims_orphan(self, tmp_path):
        path = tmp_path / "orphan.sbt"
        make_tree_file(path)
        pager = Pager(str(path))
        orphan = pager.allocate_page()
        pager.close()
        report = fsck(str(path), repair=True)
        assert report.repaired and report.ok
        assert report.free_pages == 1
        assert report.orphans == []
        # The reclaimed page is genuinely reusable: the allocator hands
        # it straight back off the rebuilt free list.
        pager = Pager(str(path))
        recycled = pager.allocate_page()
        assert recycled == orphan
        pager.free_page(recycled)
        pager.close()
        assert fsck(str(path)).ok

    def test_repair_quarantines_unreachable_corruption(self, tmp_path):
        path = tmp_path / "quarantine.sbt"
        make_tree_file(path)
        pager = Pager(str(path))
        orphan = pager.allocate_page()
        pager.close()
        flip_byte(str(path), orphan * PAGE_SIZE + 10)
        report = fsck(str(path), repair=True)
        assert report.repaired
        assert report.ok  # quarantined, so no longer an *error*
        assert orphan in report.quarantined
        assert report.has("quarantined-page")
        assert report.unrepairable == []
        # The quarantined page stays fenced off across repeated audits
        # and is never handed back to the allocator.
        again = fsck(str(path))
        assert again.ok and orphan in again.quarantined
        pager = Pager(str(path))
        fresh = pager.allocate_page()
        assert fresh != orphan
        pager.close()

    def test_repair_reports_reachable_corruption_as_unrepairable(self, tmp_path):
        path = tmp_path / "lost.sbt"
        make_tree_file(path)
        root = read_header(str(path))["root"]
        flip_byte(str(path), root * PAGE_SIZE + 30)
        report = fsck(str(path), repair=True)
        assert report.repaired
        assert not report.ok
        assert report.has("unrepairable-node")
        assert root in report.unrepairable

    def test_repair_settles_intact_journal(self, tmp_path):
        path = tmp_path / "crashed.sbt"
        make_tree_file(path, journaled=True)
        store = PagedNodeStore(str(path), journaled=True)
        tree = SBTree(store=store)
        committed = tree.to_table()
        for i in range(10):
            tree.insert(i + 1, Interval(i * 4, i * 4 + 15))
        store.buffer.flush()
        simulate_crash(store)
        report = fsck(str(path), repair=True)
        assert report.repaired and report.ok
        assert report.has("journal-settled")
        import os

        assert not os.path.exists(str(path) + "-journal")
        reopened = PagedNodeStore(str(path), journaled=True)
        assert SBTree(store=reopened).to_table() == committed
        reopened.close()

    def test_repair_settles_torn_journal(self, tmp_path):
        path = tmp_path / "torn.sbt"
        make_tree_file(path, journaled=True)
        store = PagedNodeStore(str(path), journaled=True)
        tree = SBTree(store=store)
        for i in range(10):
            tree.insert(i + 1, Interval(i * 4, i * 4 + 15))
        store.buffer.flush()
        simulate_crash(store)
        journal = str(path) + "-journal"
        record = Pager._JOURNAL_RECORD.size + PAGE_SIZE
        flip_byte(
            journal,
            Pager._JOURNAL_HEADER.size + record + Pager._JOURNAL_RECORD.size + 40,
        )
        report = fsck(str(path), repair=True)
        # Best effort: rollback stopped at the corruption, the journal is
        # settled either way, and whatever data loss remains is reported
        # rather than hidden.
        assert report.repaired
        import os

        assert not os.path.exists(journal)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestFsckCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.sbt"
        make_tree_file(path)
        assert cli_main(["fsck", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bits.sbt"
        page_count = make_tree_file(path)
        flip_byte(str(path), (page_count - 1) * PAGE_SIZE + 50)
        assert cli_main(["fsck", str(path)]) == 1
        assert "bad-checksum" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert cli_main(["fsck", str(tmp_path / "nope.sbt")]) == 2

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "clean.sbt"
        make_tree_file(path)
        assert cli_main(["fsck", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert isinstance(payload["findings"], list)

    def test_repair_flag(self, tmp_path, capsys):
        path = tmp_path / "orphan.sbt"
        make_tree_file(path)
        pager = Pager(str(path))
        pager.allocate_page()
        pager.close()
        assert cli_main(["fsck", str(path)]) == 1
        assert cli_main(["fsck", str(path), "--repair"]) == 0
        assert cli_main(["fsck", str(path)]) == 0
