"""Stateful crash-recovery testing: random commits and simulated crashes.

The machine drives a journaled SB-tree through random inserts, deletes,
commits, and crashes (abandoning the file handles without commit); the
model tracks the facts as of the last commit.  After every crash the
recovered tree must equal the committed model exactly.
"""

import os
import tempfile

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro import Interval, SBTree, check_tree
from repro.core import reference
from repro.storage import PagedNodeStore

times = st.integers(min_value=0, max_value=150)
values = st.integers(min_value=-5, max_value=9)
lengths = st.integers(min_value=1, max_value=60)


class JournalMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self._dir = tempfile.mkdtemp(prefix="journal-machine-")
        self.path = os.path.join(self._dir, "t.sbt")
        self._open()
        self.committed = []  # facts as of the last commit
        self.pending = []  # facts applied since

    def _open(self):
        self.store = PagedNodeStore(
            self.path, "sum", page_size=1024, buffer_capacity=8, journaled=True
        )
        self.tree = SBTree(
            "sum", self.store, branching=6, leaf_capacity=6
        ) if self.store.get_root() is None else SBTree(store=self.store)

    @rule(value=values, start=times, length=lengths)
    def insert(self, value, start, length):
        interval = Interval(start, start + length)
        self.tree.insert(value, interval)
        self.pending.append(("+", value, interval))

    @precondition(lambda self: self.committed or self.pending)
    @rule(data=st.data())
    def delete_some_live_fact(self, data):
        live = self._live()
        if not live:
            return
        value, interval = data.draw(st.sampled_from(live))
        self.tree.delete(value, interval)
        self.pending.append(("-", value, interval))

    def _live(self):
        live = list(self.committed)
        for op, value, interval in self.pending:
            if op == "+":
                live.append((value, interval))
            else:
                live.remove((value, interval))
        return live

    @rule()
    def commit(self):
        self.store.commit()
        self.committed = self._live()
        self.pending = []

    @rule()
    def crash_and_recover(self):
        # Push everything to the file, then abandon without commit.
        self.store.buffer.flush()
        self.store.pager._file.flush()
        if self.store.pager._journal_file is not None:
            self.store.pager._journal_file.flush()
        self.store.pager._file.close()
        self._open()
        self.pending = []
        expected = reference.instantaneous_table(self.committed, "sum")
        assert self.tree.to_table() == expected
        check_tree(self.tree)

    @rule(t=times)
    def lookup_reflects_all_applied_ops(self, t):
        assert self.tree.lookup(t) == reference.instantaneous_value(
            self._live(), "sum", t
        )

    def teardown(self):
        try:
            self.store.close()
        except ValueError:
            pass  # file already closed by a simulated crash


TestJournalMachine = JournalMachine.TestCase
TestJournalMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
