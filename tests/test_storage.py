"""Tests for the disk substrate: pager, buffer pool, codec, paged store."""

import struct

import pytest

from repro import Interval, MSBTree, SBTree, check_tree
from repro.core import reference
from repro.core.nodes import Node
from repro.core.values import spec_for
from repro.storage import (
    BufferPool,
    NodeCodec,
    NodeEncodingError,
    PageCorruptionError,
    PagedNodeStore,
    Pager,
)
from repro.workloads import PRESCRIPTIONS


# ----------------------------------------------------------------------
# Pager
# ----------------------------------------------------------------------
class TestPager:
    def test_create_and_reopen(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with Pager(path, page_size=1024) as pager:
            pid = pager.allocate_page()
            pager.write_page(pid, b"hello world")
            pager.set_root(pid)
            pager.set_meta("kind", "sum")
        with Pager(path) as pager:
            assert pager.page_size == 1024
            assert pager.get_root() == pid
            assert pager.get_meta("kind") == "sum"
            assert pager.read_page(pid).rstrip(b"\x00") == b"hello world"

    def test_free_list_reuses_pages(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            a = pager.allocate_page()
            b = pager.allocate_page()
            count = pager.page_count
            pager.free_page(a)
            pager.free_page(b)
            # LIFO reuse: most recently freed first.
            assert pager.allocate_page() == b
            assert pager.allocate_page() == a
            assert pager.page_count == count

    def test_live_node_count(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            assert pager.live_nodes == 0
            a = pager.allocate_page()
            pager.allocate_page()
            assert pager.live_nodes == 2
            pager.free_page(a)
            assert pager.live_nodes == 1

    def test_checksum_detects_corruption(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with Pager(path, page_size=512) as pager:
            pid = pager.allocate_page()
            pager.write_page(pid, b"payload")
        with open(path, "r+b") as f:
            f.seek(pid * 512 + 3)
            f.write(b"\xff")
        with Pager(path) as pager:
            with pytest.raises(PageCorruptionError):
                pager.read_page(pid)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with open(path, "wb") as f:
            f.write(b"NOTMAGIC" + b"\x00" * 600)
        with pytest.raises(PageCorruptionError):
            Pager(path)

    def test_out_of_range_page(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            with pytest.raises(ValueError):
                pager.read_page(99)
            with pytest.raises(ValueError):
                pager.read_page(0)  # the header page is not a data page

    def test_oversized_payload_rejected(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt"), page_size=512) as pager:
            pid = pager.allocate_page()
            with pytest.raises(ValueError):
                pager.write_page(pid, b"x" * 600)

    def test_io_counters(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            pid = pager.allocate_page()
            pager.stats.reset()
            pager.write_page(pid, b"abc")
            pager.read_page(pid)
            assert pager.stats.physical_writes == 1
            assert pager.stats.physical_reads == 1


# ----------------------------------------------------------------------
# Buffer pool
# ----------------------------------------------------------------------
class TestBufferPool:
    def make(self, tmp_path, capacity):
        pager = Pager(str(tmp_path / "t.sbt"), page_size=512)
        return pager, BufferPool(pager, capacity=capacity)

    def test_hit_and_miss_accounting(self, tmp_path):
        pager, pool = self.make(tmp_path, capacity=4)
        pid = pager.allocate_page()
        pager.write_page(pid, b"x")
        pool.read(pid)
        pool.read(pid)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_write_back_is_deferred(self, tmp_path):
        pager, pool = self.make(tmp_path, capacity=4)
        pid = pager.allocate_page()
        pager.stats.reset()
        pool.write(pid, b"dirty")
        assert pager.stats.physical_writes == 0
        pool.flush()
        assert pager.stats.physical_writes == 1
        assert pager.read_page(pid).rstrip(b"\x00") == b"dirty"

    def test_eviction_writes_back_dirty_pages(self, tmp_path):
        pager, pool = self.make(tmp_path, capacity=2)
        pids = [pager.allocate_page() for _ in range(3)]
        pager.stats.reset()
        for i, pid in enumerate(pids):
            pool.write(pid, b"p%d" % i)
        assert pool.stats.evictions == 1
        assert pool.stats.dirty_writebacks == 1
        assert len(pool) == 2
        # The evicted page must be durable.
        assert pager.read_page(pids[0]).rstrip(b"\x00") == b"p0"

    def test_lru_order(self, tmp_path):
        pager, pool = self.make(tmp_path, capacity=2)
        a, b, c = (pager.allocate_page() for _ in range(3))
        pool.write(a, b"a")
        pool.write(b, b"b")
        pool.read(a)  # refresh a; b becomes the LRU victim
        pool.write(c, b"c")
        assert pager.read_page(b).rstrip(b"\x00") == b"b"  # b was evicted
        pager.stats.reset()
        pool.read(a)  # still cached
        assert pager.stats.physical_reads == 0

    def test_discard_drops_without_writeback(self, tmp_path):
        pager, pool = self.make(tmp_path, capacity=4)
        pid = pager.allocate_page()
        pager.write_page(pid, b"old")
        pager.stats.reset()
        pool.write(pid, b"new")
        pool.discard(pid)
        pool.flush()
        assert pager.stats.physical_writes == 0

    def test_capacity_validation(self, tmp_path):
        pager, _ = self.make(tmp_path, capacity=1)
        with pytest.raises(ValueError):
            BufferPool(pager, capacity=0)


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestNodeCodec:
    @pytest.mark.parametrize("kind", ["sum", "count", "min", "max"])
    def test_leaf_roundtrip(self, kind):
        codec = NodeCodec(spec_for(kind), payload_size=4092)
        node = Node(
            node_id=7, is_leaf=True, times=[5, 10, 20], values=[0, 2, 8, None if kind in ("min", "max") else 6]
        )
        decoded = codec.decode(codec.encode(node), 7)
        assert decoded.is_leaf
        assert decoded.times == node.times
        assert decoded.values == node.values
        assert decoded.children == []
        assert decoded.uvalues is None

    def test_interior_roundtrip(self):
        codec = NodeCodec(spec_for("sum"), payload_size=4092)
        node = Node(
            node_id=3,
            is_leaf=False,
            times=[15, 30, 45],
            values=[0, 1, 0, 0],
            children=[11, 12, 13, 14],
        )
        decoded = codec.decode(codec.encode(node), 3)
        assert not decoded.is_leaf
        assert decoded.children == node.children
        assert decoded.values == node.values

    def test_avg_pair_roundtrip(self):
        codec = NodeCodec(spec_for("avg"), payload_size=4092)
        node = Node(node_id=1, is_leaf=True, times=[10], values=[(2, 1), (8, 4)])
        decoded = codec.decode(codec.encode(node), 1)
        assert decoded.values == [(2, 1), (8, 4)]

    def test_msb_uvalues_roundtrip(self):
        codec = NodeCodec(spec_for("max"), payload_size=4092)
        node = Node(
            node_id=2,
            is_leaf=False,
            times=[30],
            values=[None, 4],
            children=[5, 6],
            uvalues=[3, None],
        )
        decoded = codec.decode(codec.encode(node), 2)
        assert decoded.uvalues == [3, None]
        assert decoded.values == [None, 4]

    def test_float_values_survive(self):
        codec = NodeCodec(spec_for("sum"), payload_size=4092)
        node = Node(node_id=1, is_leaf=True, times=[1.5], values=[0.25, -3.75])
        decoded = codec.decode(codec.encode(node), 1)
        assert decoded.times == [1.5]
        assert decoded.values == [0.25, -3.75]

    def test_capacity_bounds_include_overflow_slack(self):
        # A node may transiently hold capacity+2 intervals right before
        # a split (Section 3.5); that state must still fit the page.
        codec = NodeCodec(spec_for("sum"), payload_size=4092)
        l = codec.max_leaf_capacity()
        node = Node(
            node_id=1,
            is_leaf=True,
            times=list(range(l + 1)),
            values=[1] * (l + 2),
        )
        codec.encode(node)  # capacity + 2: must fit
        node.times.append(l + 2)
        node.values.append(1)
        with pytest.raises(NodeEncodingError):
            codec.encode(node)

    def test_avg_nodes_have_smaller_fanout(self):
        sum_codec = NodeCodec(spec_for("sum"), payload_size=4092)
        avg_codec = NodeCodec(spec_for("avg"), payload_size=4092)
        assert avg_codec.max_branching(False) < sum_codec.max_branching(False)

    def test_annotated_nodes_have_smaller_fanout(self):
        # Section 4.3: MSB-trees have a smaller maximum branching factor.
        codec = NodeCodec(spec_for("max"), payload_size=4092)
        assert codec.max_branching(True) < codec.max_branching(False)


# ----------------------------------------------------------------------
# Paged node store end-to-end
# ----------------------------------------------------------------------
class TestPagedNodeStore:
    def build(self, store, kind="sum"):
        tree = SBTree(kind, store, branching=8, leaf_capacity=8)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
        return tree

    def test_tree_on_disk_matches_memory(self, tmp_path):
        store = PagedNodeStore(str(tmp_path / "t.sbt"), "sum")
        disk_tree = self.build(store)
        expected = SBTree("sum", branching=8, leaf_capacity=8)
        for p in PRESCRIPTIONS:
            expected.insert(p.dosage, p.valid)
        assert disk_tree.to_table() == expected.to_table()
        check_tree(disk_tree)
        store.close()

    def test_close_and_reopen(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        store = PagedNodeStore(path, "sum")
        tree = self.build(store)
        expected = tree.to_table()
        store.close()
        reopened = PagedNodeStore(path)
        tree2 = SBTree(store=reopened)
        assert tree2.kind.value == "sum"
        assert tree2.b == 8 and tree2.l == 8
        assert tree2.to_table() == expected
        assert tree2.lookup(19) == 6
        reopened.close()

    def test_updates_after_reopen(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with PagedNodeStore(path, "sum") as store:
            self.build(store)
        with PagedNodeStore(path) as store:
            tree = SBTree(store=store)
            tree.insert(5, Interval(15, 45))
            assert tree.lookup(19) == 11
            check_tree(tree)

    def test_msb_tree_on_disk(self, tmp_path):
        with PagedNodeStore(str(tmp_path / "m.sbt"), "max") as store:
            msb = MSBTree("max", store, branching=4, leaf_capacity=4)
            for p in PRESCRIPTIONS:
                msb.insert(p.dosage, p.valid)
            assert msb.window_lookup(50, 20) == 4
            check_tree(msb)

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with PagedNodeStore(path, "sum") as store:
            self.build(store)
        with PagedNodeStore(path) as store:
            with pytest.raises(ValueError):
                SBTree("max", store)

    def test_page_derived_capacities(self, tmp_path):
        with PagedNodeStore(str(tmp_path / "t.sbt"), "sum", page_size=4096) as store:
            # ~4 KiB pages hold hundreds of intervals, per the paper's
            # "b and l are on the order of hundreds" remark.
            assert store.default_branching > 100
            assert store.default_leaf_capacity > store.default_branching
            assert store.default_branching_annotated < store.default_branching

    def test_buffer_pool_absorbs_io(self, tmp_path):
        with PagedNodeStore(
            str(tmp_path / "t.sbt"), "sum", buffer_capacity=128
        ) as store:
            tree = self.build(store)
            store.pager.stats.reset()
            for _ in range(50):
                tree.lookup(19)
            # All lookups served from the pool: zero physical reads.
            assert store.pager.stats.physical_reads == 0

    def test_random_workload_on_disk_matches_oracle(self, tmp_path):
        import random

        rng = random.Random(42)
        facts = []
        with PagedNodeStore(
            str(tmp_path / "t.sbt"), "count", buffer_capacity=8
        ) as store:
            tree = SBTree("count", store, branching=4, leaf_capacity=4)
            for _ in range(120):
                start = rng.randrange(0, 300)
                interval = Interval(start, start + rng.randrange(1, 80))
                facts.append((1, interval))
                tree.insert(1, interval)
            for victim in facts[::4]:
                tree.delete(victim[0], victim[1])
            live = [f for i, f in enumerate(facts) if i % 4 != 0]
            assert tree.to_table() == reference.instantaneous_table(live, "count")
            check_tree(tree)

    def test_freed_pages_are_reused(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with PagedNodeStore(path, "sum") as store:
            tree = SBTree("sum", store, branching=4, leaf_capacity=4)
            for p in PRESCRIPTIONS:
                tree.insert(p.dosage, p.valid)
            grown = store.pager.page_count
            for p in reversed(PRESCRIPTIONS):
                tree.delete(p.dosage, p.valid)
            assert store.node_count() == 1
            tree2 = SBTree("sum", branching=4, leaf_capacity=4)
            # Re-inserting must not grow the file: pages come off the
            # free list.
            for p in PRESCRIPTIONS:
                tree.insert(p.dosage, p.valid)
            assert store.pager.page_count == grown


# ----------------------------------------------------------------------
# Pager hardening (geometry mismatch, free-list validation, sync races)
# ----------------------------------------------------------------------
class TestPagerHardening:
    def test_page_size_mismatch_warns(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        with Pager(path, page_size=1024) as pager:
            pid = pager.allocate_page()
            pager.write_page(pid, b"payload")
        with pytest.warns(UserWarning, match="page_size 1024"):
            pager = Pager(path, page_size=4096)
        # The file's geometry wins; the data is still readable.
        assert pager.page_size == 1024
        assert pager.read_page(pid).rstrip(b"\x00") == b"payload"
        pager.close()

    def test_page_size_mismatch_strict_raises(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        Pager(path, page_size=1024).close()
        with pytest.raises(ValueError, match="page_size 1024"):
            Pager(path, page_size=4096, strict=True)
        # Matching geometry passes strict mode.
        Pager(path, page_size=1024, strict=True).close()

    def test_paged_store_strict_geometry(self, tmp_path):
        path = str(tmp_path / "t.sbt")
        PagedNodeStore(path, "sum", page_size=1024).close()
        with pytest.raises(ValueError):
            PagedNodeStore(path, "sum", page_size=4096, strict=True)

    def test_double_free_rejected(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            pid = pager.allocate_page()
            pager.free_page(pid)
            with pytest.raises(ValueError, match="double free"):
                pager.free_page(pid)
            # Reallocating the page makes it freeable again.
            assert pager.allocate_page() == pid
            pager.free_page(pid)

    def test_free_header_page_rejected(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            pager.allocate_page()
            with pytest.raises(ValueError, match="cannot free page 0"):
                pager.free_page(0)

    def test_free_out_of_range_rejected(self, tmp_path):
        with Pager(str(tmp_path / "t.sbt")) as pager:
            pager.allocate_page()
            with pytest.raises(ValueError, match="cannot free page"):
                pager.free_page(pager.page_count)
            with pytest.raises(ValueError, match="cannot free page"):
                pager.free_page(-3)

    def test_sync_races_with_writes(self, tmp_path):
        """pager.sync() holds the mutex, so a concurrent writer can never
        observe a torn write_page/sync interleaving."""
        import threading

        with Pager(str(tmp_path / "t.sbt"), page_size=512) as pager:
            pids = [pager.allocate_page() for _ in range(8)]
            stop = threading.Event()
            errors = []

            def syncer():
                while not stop.is_set():
                    try:
                        pager.sync()
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            def writer():
                try:
                    for round_no in range(150):
                        for pid in pids:
                            pager.write_page(pid, b"%d:%d" % (pid, round_no))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=syncer) for _ in range(2)]
            threads += [threading.Thread(target=writer)]
            for t in threads:
                t.start()
            threads[-1].join(timeout=60)
            stop.set()
            for t in threads[:-1]:
                t.join(timeout=10)
            assert not errors
            for pid in pids:
                assert pager.read_page(pid).rstrip(b"\x00") == b"%d:149" % pid

    def test_flush_races_with_reads(self, tmp_path):
        """PagedNodeStore.flush (buffer write-back + sync) vs readers."""
        import threading

        with PagedNodeStore(
            str(tmp_path / "t.sbt"), "sum", buffer_capacity=4
        ) as store:
            tree = SBTree("sum", store, branching=4, leaf_capacity=4)
            for i in range(60):
                tree.insert(1, Interval(i * 5, i * 5 + 20))
            stop = threading.Event()
            errors = []

            def flusher():
                while not stop.is_set():
                    try:
                        store.flush()
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            def reader():
                try:
                    for i in range(400):
                        assert tree.lookup(i % 300) >= 0
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            ft = threading.Thread(target=flusher)
            rt = threading.Thread(target=reader)
            ft.start()
            rt.start()
            rt.join(timeout=60)
            stop.set()
            ft.join(timeout=10)
            assert not errors
            check_tree(tree)
