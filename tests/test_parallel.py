"""Tests for parallel bucket aggregation and parallel index building."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro import Interval, SBTree, check_tree
from repro.core import reference
from repro.parallel import parallel_build, parallel_compute
from repro.workloads import prescription_facts, uniform

FACTS = uniform(300, horizon=10_000, max_duration=800, seed=9)


class TestParallelCompute:
    def test_sequential_matches_oracle(self):
        got = parallel_compute(FACTS, "sum", num_buckets=8)
        assert got == reference.instantaneous_table(FACTS, "sum")

    def test_thread_pool_matches_oracle(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = parallel_compute(FACTS, "sum", num_buckets=8, executor=pool)
        assert got == reference.instantaneous_table(FACTS, "sum")

    def test_process_pool_matches_oracle(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            got = parallel_compute(FACTS, "avg", num_buckets=4, executor=pool)
        assert got == reference.instantaneous_table(FACTS, "avg")

    def test_minmax_route(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = parallel_compute(FACTS, "max", num_buckets=8, executor=pool)
        assert got == reference.instantaneous_table(FACTS, "max")

    def test_empty_input(self):
        assert parallel_compute([], "sum").rows == []

    @pytest.mark.parametrize("nb", [1, 2, 7, 32])
    def test_bucket_count_invariance(self, nb):
        got = parallel_compute(FACTS, "count", num_buckets=nb)
        assert got == reference.instantaneous_table(FACTS, "count")


class TestParallelBuild:
    def test_built_index_answers_queries(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            tree = parallel_build(
                FACTS, "sum", num_buckets=8, executor=pool,
                branching=16, leaf_capacity=16,
            )
        check_tree(tree)
        assert tree.to_table() == reference.instantaneous_table(FACTS, "sum")
        for t in (100, 5_000, 9_000):
            assert tree.lookup(t) == reference.instantaneous_value(FACTS, "sum", t)

    def test_built_index_is_maintainable(self):
        tree = parallel_build(
            prescription_facts(), "sum", num_buckets=2,
            branching=4, leaf_capacity=4,
        )
        assert tree.lookup(19) == 6
        tree.insert(5, Interval(15, 45))
        assert tree.lookup(19) == 11
        tree.delete(5, Interval(15, 45))
        assert tree.lookup(19) == 6
        check_tree(tree)

    def test_empty_build(self):
        tree = parallel_build([], "sum", branching=4, leaf_capacity=4)
        assert tree.to_table().rows == []

    def test_equivalent_to_incremental_build(self):
        incremental = SBTree("sum", branching=16, leaf_capacity=16)
        for value, interval in FACTS:
            incremental.insert(value, interval)
        built = parallel_build(FACTS, "sum", branching=16, leaf_capacity=16)
        assert built.to_table() == incremental.to_table()


class TestIntegerEdges:
    """Regression: ``_edges`` used float true-division even for integer
    timelines, letting float bucket boundaries leak into the
    partitioning of an int-valued domain."""

    def test_edges_stay_integers(self):
        from repro.parallel import _edges

        facts = [(1, Interval(0, 100)), (2, Interval(7, 93))]
        edges = _edges(facts, 3)
        assert edges == [0, 33, 66, 100]
        assert all(type(e) is int for e in edges)

    def test_float_timeline_keeps_float_edges(self):
        from repro.parallel import _edges

        facts = [(1, Interval(0.0, 1.0))]
        edges = _edges(facts, 4)
        assert edges == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_endpoint_types_match_oracle(self):
        facts = uniform(300, horizon=1000, max_duration=50, seed=13)
        expected = reference.instantaneous_table(facts, "sum")
        # A bucket count that does not divide the span evenly -- the old
        # float edges would appear here.
        result = parallel_compute(facts, "sum", num_buckets=7)
        assert result == expected
        for (_, interval), (_, exp_interval) in zip(result.rows, expected.rows):
            assert type(interval.start) is type(exp_interval.start)
            assert type(interval.end) is type(exp_interval.end)
        # Every finite endpoint of the int-domain result is an int.
        for _, interval in result.rows:
            for endpoint in (interval.start, interval.end):
                if isinstance(endpoint, float) and endpoint in (
                    float("-inf"),
                    float("inf"),
                ):
                    continue
                assert type(endpoint) is int, endpoint
