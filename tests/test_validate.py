"""Tests for the invariant auditor itself: it must catch corruption."""

import pytest

from repro import Interval, MSBTree, SBTree, check_tree
from repro.core.validate import TreeInvariantError
from repro.workloads import PRESCRIPTIONS


def build(kind="sum"):
    tree = SBTree(kind, branching=4, leaf_capacity=4)
    for p in PRESCRIPTIONS:
        tree.insert(p.dosage, p.valid)
    return tree


def corrupt(tree, mutate):
    """Apply *mutate* to the root node and write it back."""
    root = tree.store.read(tree.store.get_root())
    mutate(root, tree)
    tree.store.write(root)


class TestStructuralChecks:
    def test_healthy_tree_passes(self):
        check_tree(build())

    def test_value_count_mismatch(self):
        tree = build()
        corrupt(tree, lambda root, t: root.values.append(0))
        with pytest.raises(TreeInvariantError, match="values"):
            check_tree(tree)

    def test_child_count_mismatch(self):
        tree = build()
        corrupt(tree, lambda root, t: root.children.pop())
        with pytest.raises(TreeInvariantError):
            check_tree(tree)

    def test_unsorted_times(self):
        tree = build()

        def swap(root, t):
            root.times[0], root.times[1] = root.times[1], root.times[0]

        corrupt(tree, swap)
        with pytest.raises(TreeInvariantError, match="increasing"):
            check_tree(tree)

    def test_time_outside_inherited_span(self):
        tree = build()
        root = tree.store.read(tree.store.get_root())
        child = tree.store.read(root.children[0])
        # Keep times ascending but push the last one past the inherited
        # upper bound (the parent's first separator).
        child.times[-1] = root.times[0] + 1
        tree.store.write(child)
        with pytest.raises(TreeInvariantError, match="span"):
            check_tree(tree)

    def test_underfull_leaf(self):
        tree = build()
        root = tree.store.read(tree.store.get_root())
        child = tree.store.read(root.children[2])  # has 3 intervals
        del child.times[:]  # leave a single interval: below ceil(l/2)=2
        del child.values[1:]
        tree.store.write(child)
        with pytest.raises(TreeInvariantError, match="underfull"):
            check_tree(tree)

    def test_overflowing_leaf(self):
        tree = build()
        root = tree.store.read(tree.store.get_root())
        child = tree.store.read(root.children[0])
        lo = -10
        for k in range(6):
            child.times.insert(0, lo + k * 0.1)
            child.values.insert(0, k)
        tree.store.write(child)
        with pytest.raises(TreeInvariantError, match="overflow"):
            check_tree(tree)

    def test_interior_root_needs_two_intervals(self):
        tree = build()
        root = tree.store.read(tree.store.get_root())
        root.times = []
        root.values = root.values[:1]
        root.children = root.children[:1]
        tree.store.write(root)
        with pytest.raises(TreeInvariantError, match="root"):
            check_tree(tree)


class TestCompactnessCheck:
    def test_adjacent_equal_leaf_values_flagged(self):
        tree = build()
        root = tree.store.read(tree.store.get_root())
        leaf = tree.store.read(root.children[0])
        leaf.values[1] = leaf.values[2]  # duplicate adjacent value
        tree.store.write(leaf)
        with pytest.raises(TreeInvariantError, match="compact"):
            check_tree(tree)

    def test_min_max_skips_compactness_by_default(self):
        tree = SBTree("max", branching=4, leaf_capacity=4)
        tree.insert(5, Interval(0, 10))
        tree.insert(5, Interval(10, 20))  # adjacent equal MAX: allowed
        check_tree(tree)
        with pytest.raises(TreeInvariantError):
            check_tree(tree, check_compact=True)


class TestUAnnotationCheck:
    def test_understated_u_flagged(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for i in range(40):
            msb.insert(i, Interval(i * 3, i * 3 + 10))
        root = msb.store.read(msb.store.get_root())
        # Understate: pretend the subtree's max is lower than it is.
        root.uvalues[-1] = -999
        msb.store.write(root)
        with pytest.raises(TreeInvariantError, match="annotation"):
            check_tree(msb)

    def test_overstated_u_flagged(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for i in range(40):
            msb.insert(i % 6, Interval(i * 3, i * 3 + 10))
        root = msb.store.read(msb.store.get_root())
        root.uvalues[0] = 999
        msb.store.write(root)
        with pytest.raises(TreeInvariantError, match="annotation"):
            check_tree(msb)
