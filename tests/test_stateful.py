"""Stateful (model-based) testing with hypothesis.

A rule-based state machine drives random interleavings of inserts,
deletes, lookups, range queries and compactions against an SB-tree (and
a parallel MSB-tree), with a plain list of live facts as the model.
Hypothesis explores operation orderings and shrinks failures to minimal
sequences.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import Interval, MSBTree, SBTree, check_tree
from repro.core import reference

times = st.integers(min_value=0, max_value=200)
values = st.integers(min_value=-9, max_value=9)
lengths = st.integers(min_value=1, max_value=120)


class SBTreeMachine(RuleBasedStateMachine):
    """SUM tree with deletions, validated against the fact-list model."""

    def __init__(self):
        super().__init__()
        self.tree = SBTree("sum", branching=4, leaf_capacity=4)
        self.model = []

    @rule(value=values, start=times, length=lengths)
    def insert(self, value, start, length):
        interval = Interval(start, start + length)
        self.tree.insert(value, interval)
        self.model.append((value, interval))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        value, interval = self.model.pop(index)
        self.tree.delete(value, interval)

    @rule(t=times)
    def lookup_matches_model(self, t):
        assert self.tree.lookup(t) == reference.instantaneous_value(
            self.model, "sum", t
        )

    @rule(start=times, length=lengths)
    def range_query_matches_model(self, start, length):
        window = Interval(start, start + length)
        got = self.tree.range_query(window).coalesce(self.tree.spec.eq)
        want = (
            reference.instantaneous_table(self.model, "sum", drop_initial=False)
            .restrict(window)
            .coalesce()
        )
        assert got == want

    @rule()
    def compact_in_place(self):
        before = self.tree.to_table()
        self.tree.compact()
        assert self.tree.to_table() == before

    @rule()
    def bulk_reload(self):
        before = self.tree.to_table()
        self.tree.compact(bulk=True)
        assert self.tree.to_table() == before

    @invariant()
    def structure_is_sound(self):
        check_tree(self.tree)


class MSBTreeMachine(RuleBasedStateMachine):
    """MAX MSB-tree (insert-only), window lookups against the model."""

    def __init__(self):
        super().__init__()
        self.tree = MSBTree("max", branching=4, leaf_capacity=4)
        self.model = []

    @rule(value=values, start=times, length=lengths)
    def insert(self, value, start, length):
        interval = Interval(start, start + length)
        self.tree.insert(value, interval)
        self.model.append((value, interval))

    @rule(t=times, w=st.integers(min_value=0, max_value=100))
    def window_lookup_matches_model(self, t, w):
        assert self.tree.window_lookup(t, w) == reference.cumulative_value(
            self.model, "max", t, w
        )

    @rule()
    def mbmerge(self):
        self.tree.mbmerge()

    @invariant()
    def structure_and_annotations_sound(self):
        check_tree(self.tree)


TestSBTreeMachine = SBTreeMachine.TestCase
TestSBTreeMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestMSBTreeMachine = MSBTreeMachine.TestCase
TestMSBTreeMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
