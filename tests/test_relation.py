"""Tests for temporal relations and change streams."""

import pytest

from repro import Interval
from repro.relation import ChangeKind, TemporalRelation, TemporalTuple


class TestTemporalRelation:
    def test_insert_assigns_ids_and_stores(self):
        rel = TemporalRelation("prescription")
        row = rel.insert(2, Interval(10, 40), patient="Amy")
        assert row.tuple_id == 1
        assert row.payload["patient"] == "Amy"
        assert len(rel) == 1
        assert rel.get(1) is row

    def test_interval_tuples_accepted(self):
        rel = TemporalRelation("r")
        row = rel.insert(5, (1, 9))
        assert row.valid == Interval(1, 9)

    def test_delete_by_id_and_by_row(self):
        rel = TemporalRelation("r")
        a = rel.insert(1, Interval(0, 10))
        b = rel.insert(2, Interval(5, 15))
        rel.delete(a.tuple_id)
        rel.delete(b)
        assert len(rel) == 0

    def test_delete_unknown_raises(self):
        rel = TemporalRelation("r")
        with pytest.raises(KeyError):
            rel.delete(99)

    def test_scan_valid_at(self):
        rel = TemporalRelation("r")
        rel.insert(1, Interval(0, 10))
        rel.insert(2, Interval(5, 15))
        rel.insert(3, Interval(20, 30))
        assert sorted(row.value for row in rel.scan(valid_at=7)) == [1, 2]
        assert [row.value for row in rel.scan(valid_at=25)] == [3]

    def test_facts(self):
        rel = TemporalRelation("r")
        rel.insert(1, Interval(0, 10))
        assert rel.facts() == [(1, Interval(0, 10))]

    def test_subscribers_receive_events(self):
        rel = TemporalRelation("r")
        events = []
        rel.subscribe(events.append)
        row = rel.insert(1, Interval(0, 10))
        rel.delete(row)
        assert [e.kind for e in events] == [ChangeKind.INSERT, ChangeKind.DELETE]
        assert events[0].tuple is row

    def test_replay_on_subscribe(self):
        rel = TemporalRelation("r")
        rel.insert(1, Interval(0, 10))
        rel.insert(2, Interval(5, 15))
        events = []
        rel.subscribe(events.append, replay=True)
        assert len(events) == 2
        assert all(e.kind is ChangeKind.INSERT for e in events)

    def test_no_replay_option(self):
        rel = TemporalRelation("r")
        rel.insert(1, Interval(0, 10))
        events = []
        rel.subscribe(events.append, replay=False)
        assert events == []
        rel.insert(2, Interval(1, 2))
        assert len(events) == 1

    def test_unsubscribe(self):
        rel = TemporalRelation("r")
        events = []
        rel.subscribe(events.append, replay=False)
        rel.unsubscribe(events.append)
        rel.insert(1, Interval(0, 10))
        assert events == []

    def test_tuples_are_immutable(self):
        row = TemporalTuple(1, 5, Interval(0, 10))
        with pytest.raises(AttributeError):
            row.value = 6
