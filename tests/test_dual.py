"""Unit tests for the dual SB-tree pair (Section 4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import DualTreeAggregate, Interval, NEG_INF, POS_INF
from repro.core import reference

times = st.integers(min_value=0, max_value=100)
values = st.integers(min_value=-9, max_value=9)


@st.composite
def intervals(draw):
    start = draw(times)
    return Interval(start, start + draw(st.integers(min_value=1, max_value=50)))


facts_lists = st.lists(st.tuples(values, intervals()), min_size=0, max_size=20)


class TestConstruction:
    def test_min_max_rejected(self):
        for kind in ("min", "max"):
            with pytest.raises(ValueError):
                DualTreeAggregate(kind)

    def test_negative_offset_rejected(self):
        dual = DualTreeAggregate("sum")
        with pytest.raises(ValueError):
            dual.window_lookup(10, -1)


class TestEndedTreeSemantics:
    """lookup(T', t) aggregates tuples that ended at or before t."""

    def test_ended_tree_counts_finished_tuples(self):
        dual = DualTreeAggregate("count", branching=4, leaf_capacity=4)
        dual.insert(1, Interval(0, 10))
        dual.insert(1, Interval(5, 20))
        # Before any tuple ends: nothing in T'.
        assert dual.ended.lookup(9) == 0
        # The first tuple counts as "ended" from its end instant onward
        # (our [end, inf) erratum fix; the paper's (end, inf) would miss
        # the boundary instant).
        assert dual.ended.lookup(10) == 1
        assert dual.ended.lookup(20) == 2
        assert dual.ended.lookup(1_000_000) == 2

    def test_never_ending_tuples_skip_ended_tree(self):
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(5, Interval(0, POS_INF))
        assert dual.ended.to_table().rows == []
        # But the tuple is live forever in T.
        assert dual.window_lookup(1_000, 10) == 5

    def test_boundary_instant_semantics(self):
        """The precise boundary case behind the Figure 21 erratum.

        A tuple over [5, 15) and a window [15, 20] (t=20, w=5) do not
        intersect, so the tuple must not be counted at t=20 -- this is
        the case where the paper's (end, inf) construction miscounts.
        """
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(2, Interval(5, 15))
        assert dual.window_lookup(19, 5) == 2  # window [14,19] meets [5,15)
        assert dual.window_lookup(20, 5) == 0  # window [15,20] does not

    @given(facts=facts_lists, t=times)
    @settings(max_examples=40, deadline=None)
    def test_ended_plus_live_partition(self, facts, t):
        """Every bounded tuple is live at t, ended before t, or future."""
        dual = DualTreeAggregate("count", branching=4, leaf_capacity=4)
        for value, interval in facts:
            dual.insert(value, interval)
        live = dual.current.lookup(t)
        ended = dual.ended.lookup(t)
        future = sum(1 for _, i in facts if i.start > t)
        # not-yet-started = tuples with start > t... except those also
        # containing t is impossible; partition must cover everything.
        assert live + ended + future == len(facts)


class TestWindowQuery:
    def test_window_table_breakpoints(self):
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(1, Interval(0, 10))
        table = dual.window_table(5)
        # The tuple contributes over [0, 15): live in [0,10), in-window
        # ended during [10, 15).
        assert table.rows == [(1, Interval(0, 15))]

    def test_window_query_clipped(self):
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(1, Interval(0, 10))
        dual.insert(2, Interval(20, 30))
        got = dual.window_query(Interval(5, 25), 5)
        assert got.value_at(5) == 1
        assert got.value_at(14) == 1
        assert got.value_at(16) == 0
        assert got.value_at(21) == 2

    @given(facts=facts_lists, w=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_window_query_pointwise_agreement(self, facts, w):
        dual = DualTreeAggregate("avg", branching=4, leaf_capacity=4)
        for value, interval in facts:
            dual.insert(value, interval)
        table = dual.window_query(Interval(-20, 200), w)
        for t in range(-20, 200, 7):
            assert table.value_at(t) == reference.cumulative_value(
                facts, "avg", t, w
            )


class TestMaintenance:
    def test_delete_updates_both_trees(self):
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(5, Interval(0, 10))
        dual.insert(3, Interval(2, 8))
        dual.delete(5, Interval(0, 10))
        assert dual.current.to_table() == reference.instantaneous_table(
            [(3, Interval(2, 8))], "sum"
        )
        assert dual.ended.lookup(9) == 3  # only the remaining tuple's end
        assert dual.ended.lookup(7) == 0

    def test_full_roundtrip_empties_both_trees(self):
        dual = DualTreeAggregate("avg", branching=4, leaf_capacity=4)
        facts = [(i, Interval(i, i + 10)) for i in range(30)]
        for value, interval in facts:
            dual.insert(value, interval)
        for value, interval in facts:
            dual.delete(value, interval)
        assert dual.current.to_table().rows == []
        assert dual.ended.to_table().rows == []
        assert dual.current.node_count() == 1
        assert dual.ended.node_count() == 1

    def test_separate_stores(self):
        from repro import MemoryNodeStore

        s1, s2 = MemoryNodeStore(), MemoryNodeStore()
        dual = DualTreeAggregate("sum", s1, s2, branching=4, leaf_capacity=4)
        dual.insert(1, Interval(0, 10))
        assert s1.node_count() >= 1
        assert s2.node_count() >= 1
        assert dual.current.store is s1
        assert dual.ended.store is s2


class TestInstantaneousShortcut:
    def test_lookup_is_current_tree(self):
        dual = DualTreeAggregate("sum", branching=4, leaf_capacity=4)
        dual.insert(5, Interval(0, 10))
        assert dual.lookup(5) == 5
        assert dual.lookup(5) == dual.window_lookup(5, 0)

    @given(facts=facts_lists, t=times)
    @settings(max_examples=30, deadline=None)
    def test_window_zero_matches_instantaneous(self, facts, t):
        dual = DualTreeAggregate("count", branching=4, leaf_capacity=4)
        for value, interval in facts:
            dual.insert(value, interval)
        assert dual.window_lookup(t, 0) == dual.lookup(t)
