"""Tests for the synthetic workload generators."""

from collections import Counter

from repro import Interval
from repro.workloads import (
    insert_delete_stream,
    long_interval_mix,
    ordered,
    uniform,
)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        assert uniform(50, seed=7) == uniform(50, seed=7)
        assert ordered(50, k=3, seed=7) == ordered(50, k=3, seed=7)
        assert long_interval_mix(50, seed=7) == long_interval_mix(50, seed=7)
        assert insert_delete_stream(50, seed=7) == insert_delete_stream(50, seed=7)

    def test_different_seed_different_workload(self):
        assert uniform(50, seed=1) != uniform(50, seed=2)


class TestUniform:
    def test_shape(self):
        facts = uniform(100, horizon=1000, max_duration=50, seed=0)
        assert len(facts) == 100
        for value, interval in facts:
            assert isinstance(interval, Interval)
            assert 0 <= interval.start < 1000
            assert 1 <= interval.length <= 50


class TestLongIntervalMix:
    def test_contains_long_spanners(self):
        facts = long_interval_mix(
            400, horizon=10_000, short_duration=50, long_fraction=0.1, seed=1
        )
        long_count = sum(1 for _, i in facts if i.length > 5_000)
        short_count = sum(1 for _, i in facts if i.length <= 50)
        assert long_count > 10
        assert short_count > 300


class TestOrdered:
    def test_k0_is_sorted(self):
        facts = ordered(200, k=0, seed=3)
        starts = [i.start for _, i in facts]
        assert starts == sorted(starts)

    def test_k_bounded_disorder(self):
        k = 5
        facts = ordered(200, k=k, seed=3)
        starts = [i.start for _, i in facts]
        ranks = {s: r for r, s in enumerate(sorted(starts))}
        assert all(abs(ranks[s] - pos) <= k for pos, s in enumerate(starts))


class TestInsertDeleteStream:
    def test_deletes_only_live_tuples(self):
        ops = insert_delete_stream(300, delete_fraction=0.4, seed=5)
        live = Counter()
        for op in ops:
            key = (op.value, op.interval)
            if op.is_insert:
                live[key] += 1
            else:
                assert live[key] > 0, "deleted a tuple that is not live"
                live[key] -= 1

    def test_mix_ratio(self):
        ops = insert_delete_stream(1000, delete_fraction=0.3, seed=5)
        deletes = sum(1 for op in ops if not op.is_insert)
        assert 150 < deletes < 450
