"""Tests for the resilience layer: exactly-once writes, overload
protection, chaos proxy, and the dedup window's persistence."""

import socket
import struct
import threading
import time

import pytest

from repro.core import reference
from repro.core.sbtree import SBTree
from repro.faults import FaultInjector, derive_rng, simulate_crash
from repro.service import (
    ChaosPlan,
    ChaosProxy,
    CircuitOpenError,
    DedupWindow,
    ServerHandle,
    ServiceClient,
    ServiceError,
    TransportError,
    protocol,
)
from repro.service import dedup as dedup_mod
from repro.sharding import ShardedTree
from repro.storage import PagedNodeStore


@pytest.fixture
def sum_server():
    sharded = ShardedTree("sum", num_shards=4, span=(0, 1000),
                          branching=4, leaf_capacity=4)
    with ServerHandle.start(sharded, batch_max=8, batch_delay=0.002) as handle:
        yield handle, sharded


def client_for(handle, **kwargs):
    kwargs.setdefault("timeout", 5.0)
    return ServiceClient(handle.host, handle.port, **kwargs)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Dedup window unit behavior
# ----------------------------------------------------------------------
class TestDedupWindow:
    def test_miss_hit_stale(self):
        win = DedupWindow(per_client=2)
        assert win.lookup("c", 1) == (dedup_mod.MISS, None)
        win.record("c", 1, {"applied": 1})
        assert win.lookup("c", 1) == (dedup_mod.HIT, {"applied": 1})
        win.record("c", 2, {"applied": 1})
        win.record("c", 3, {"applied": 1})  # evicts seq 1 -> floor
        status, stored = win.lookup("c", 1)
        assert status == dedup_mod.STALE and stored is None
        assert win.lookup("c", 4) == (dedup_mod.MISS, None)

    def test_max_clients_eviction(self):
        win = DedupWindow(per_client=4, max_clients=2)
        for name in ("a", "b", "c"):
            win.record(name, 1, {"applied": 1})
        assert win.num_clients == 2
        assert win.lookup("a", 1) == (dedup_mod.MISS, None)  # forgotten

    def test_encode_load_roundtrip(self):
        win = DedupWindow(per_client=8, persist_per_client=8)
        for seq in range(1, 5):
            win.record("c", seq, {"applied": seq})
        payload = win.encode_with([(("d", 7), {"applied": 2})])
        restored = DedupWindow(per_client=8)
        assert restored.load([payload]) == 5
        assert restored.lookup("c", 3) == (dedup_mod.HIT, {"applied": 3})
        assert restored.lookup("d", 7) == (dedup_mod.HIT, {"applied": 2})

    def test_persist_cap_collapses_into_floor(self):
        win = DedupWindow(per_client=64, persist_per_client=2)
        for seq in range(1, 7):
            win.record("c", seq, {"applied": 1})
        restored = DedupWindow(per_client=64)
        restored.load([win.encode_with()])
        # Only the newest 2 survive verbatim; older seqs answer stale.
        assert restored.lookup("c", 6)[0] == dedup_mod.HIT
        assert restored.lookup("c", 5)[0] == dedup_mod.HIT
        assert restored.lookup("c", 2)[0] == dedup_mod.STALE

    def test_load_skips_malformed_payloads(self):
        win = DedupWindow()
        assert win.load(["not json", None, "", '{"v":1}', '{"v":1,"clients":3}']) == 0
        assert win.num_clients == 0


# ----------------------------------------------------------------------
# Exactly-once server behavior
# ----------------------------------------------------------------------
class TestExactlyOnce:
    def test_duplicate_insert_replayed(self, sum_server):
        handle, sharded = sum_server
        with client_for(handle) as svc:
            assert svc.insert(5, 10, 40, seq=1) == 1
            result = svc.insert_result(5, 10, 40, seq=1)
            assert result["duplicate"] is True
            assert svc.lookup(20) == 5  # applied once, not twice
        assert sharded.facts_applied == 1

    def test_duplicate_across_reconnects(self, sum_server):
        handle, sharded = sum_server
        with client_for(handle, client_id="fixed") as svc:
            assert svc.insert(3, 100, 200, seq=9) == 1
        # A fresh connection, same identity: the retry of a write whose
        # reply was lost while the socket died.
        with client_for(handle, client_id="fixed") as svc:
            result = svc.insert_result(3, 100, 200, seq=9)
            assert result["duplicate"] is True
            assert svc.lookup(150) == 3
        assert sharded.facts_applied == 1

    def test_window_eviction_still_deduplicates(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 1000))
        with ServerHandle.start(sharded, batch_max=1, dedup_window=4) as handle:
            with client_for(handle, client_id="evict") as svc:
                for seq in range(1, 7):
                    svc.insert(1, seq * 10, seq * 10 + 5, seq=seq)
                # seq 1 has been evicted from the 4-entry window: the
                # retry is still answered as a duplicate via the floor.
                result = svc.insert_result(1, 10, 15, seq=1)
                assert result["duplicate"] is True
                assert result["applied"] == 0
                assert result.get("evicted") is True
        assert sharded.facts_applied == 6

    def test_bad_idempotency_fields_rejected(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as err:
                svc._request("insert", value=1, start=0, end=5,
                             client="", seq=1)
            assert err.value.type == "bad_request"
            with pytest.raises(ServiceError) as err:
                svc._request("insert", value=1, start=0, end=5,
                             client="c", seq=0)
            assert err.value.type == "bad_request"

    def test_legacy_writes_without_key_still_work(self, sum_server):
        handle, sharded = sum_server
        with client_for(handle) as svc:
            assert svc._request("insert", value=2, start=0, end=9)["applied"] == 1
            assert svc._request("insert", value=2, start=0, end=9)["applied"] == 1
        assert sharded.facts_applied == 2  # no key -> no dedup


class TestDedupPersistence:
    def _paged_server(self, path, **kwargs):
        store = PagedNodeStore(path, "sum", journaled=True)
        sharded = ShardedTree("sum", [], stores=[store])
        handle = ServerHandle.start(sharded, batch_max=4,
                                    batch_delay=0.002, **kwargs)
        return store, sharded, handle

    def test_dedup_survives_crash_restart(self, tmp_path):
        path = str(tmp_path / "dedup.sbt")
        store, _, handle = self._paged_server(path)
        with client_for(handle, client_id="crashy") as svc:
            assert svc.insert(7, 10, 50, seq=1) == 1  # acked => committed
        simulate_crash(store)  # die without any graceful shutdown
        handle.stop()

        store2 = PagedNodeStore(path, "sum", journaled=True)  # rollback
        sharded2 = ShardedTree("sum", [], stores=[store2])
        with ServerHandle.start(sharded2, batch_max=4) as handle2:
            with client_for(handle2, client_id="crashy") as svc:
                result = svc.insert_result(7, 10, 50, seq=1)
                assert result["duplicate"] is True
                assert svc.lookup(20) == 7  # once, despite the retry
        assert sharded2.facts_applied == 0  # replay never touched the tree

    def test_acked_writes_and_dedup_survive_graceful_restart(self, tmp_path):
        path = str(tmp_path / "restart.sbt")
        _, _, handle = self._paged_server(path)
        with client_for(handle, client_id="c") as svc:
            svc.insert(2, 0, 100, seq=1)
            svc.insert(4, 50, 150, seq=2)
        handle.stop()

        store2 = PagedNodeStore(path, "sum", journaled=True)
        tree = SBTree(store=store2)
        want = reference.instantaneous_table(
            [(2, (0, 100)), (4, (50, 150))], "sum"
        )
        assert tree.to_table() == want
        win = DedupWindow()
        assert win.load([store2.get_meta("service.dedup")]) == 2
        store2.close()

    def test_drain_flushes_and_commits_pending_batch(self, tmp_path):
        # A batch still waiting on the group-commit timer when stop()
        # begins must be applied and committed, not dropped.
        path = str(tmp_path / "drain.sbt")
        _, _, handle = self._paged_server(path)
        acked = []

        def write():
            with client_for(handle, client_id="drainer") as svc:
                acked.append(svc.insert(9, 10, 20, seq=1))

        # batch_max=4 is never reached; the write waits on the delay
        # timer while the drain races it.
        writer = threading.Thread(target=write)
        writer.start()
        time.sleep(0.05)
        handle.stop()
        writer.join(timeout=5)
        assert acked == [1]

        store2 = PagedNodeStore(path, "sum", journaled=True)
        tree = SBTree(store=store2)
        assert tree.to_table() == reference.instantaneous_table(
            [(9, (10, 20))], "sum"
        )
        store2.close()


# ----------------------------------------------------------------------
# Overload protection and deadlines
# ----------------------------------------------------------------------
class TestOverload:
    def test_deadline_zero_is_shed(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as err:
                svc._request("lookup", t=5, deadline_ms=0)
            assert err.value.type == "deadline_exceeded"

    def test_generous_deadline_passes(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, deadline_ms=30_000) as svc:
            assert svc.ping()
            assert svc._request("lookup", t=5, deadline_ms=30_000) == 0

    def test_malformed_deadline_rejected(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as err:
                svc._request("ping", deadline_ms="soon")
            assert err.value.type == "bad_request"

    def test_overloaded_rejection_carries_retry_after(self):
        injector = FaultInjector()
        injector.slow_at("shard_apply", 0.5)
        sharded = ShardedTree("sum", num_shards=2, span=(0, 1000),
                              fault_injector=injector)
        with ServerHandle.start(sharded, batch_max=1,
                                max_inflight=1) as handle:
            blocker_done = []

            def blocker():
                with client_for(handle) as svc:
                    svc.insert(1, 0, 10)
                    blocker_done.append(True)

            thread = threading.Thread(target=blocker)
            thread.start()
            time.sleep(0.1)  # the slow apply now occupies the one slot
            with client_for(handle, retries=0) as svc:
                with pytest.raises(ServiceError) as err:
                    svc.ping()
                assert err.value.type == "overloaded"
                assert err.value.retry_after > 0
            thread.join(timeout=5)
            assert blocker_done == [True]

    def test_client_retries_overload_to_success(self):
        injector = FaultInjector()
        injector.slow_at("shard_apply", 0.3)
        sharded = ShardedTree("sum", num_shards=2, span=(0, 1000),
                              fault_injector=injector)
        with ServerHandle.start(sharded, batch_max=1,
                                max_inflight=1) as handle:
            thread = threading.Thread(
                target=lambda: client_for(handle).insert(1, 0, 10)
            )
            thread.start()
            time.sleep(0.1)
            # Retries ride out the overload window (retry_after floor).
            with client_for(handle, retries=8, retry_backoff=0.05) as svc:
                assert svc.ping()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Client retry machinery
# ----------------------------------------------------------------------
class TestClientRetries:
    def test_backoff_is_capped_exponential_with_jitter(self):
        svc = ServiceClient(jitter_seed=7, client_id="t",
                            retry_backoff=0.1, retry_backoff_max=0.8)
        delays = [svc.backoff_delay(n) for n in range(1, 8)]
        for n, delay in enumerate(delays, start=1):
            ceiling = min(0.1 * 2 ** (n - 1), 0.8)
            assert 0.5 * ceiling <= delay <= ceiling
        assert max(delays) <= 0.8

    def test_retry_after_hint_beats_backoff_cap(self):
        # A server's retry_after is a statement about when capacity
        # returns; the client must honor it even past its own
        # retry_backoff_max ceiling instead of hammering early.
        svc = ServiceClient(jitter_seed=7, client_id="t",
                            retry_backoff=0.05, retry_backoff_max=0.4)
        delay = svc.backoff_delay(1, hint=3.0)
        assert delay >= 3.0
        # ...but never past the request's remaining deadline budget:
        # sleeping through the deadline guarantees ERR_DEADLINE.
        capped = svc.backoff_delay(1, hint=3.0, remaining_ms=250.0)
        assert capped <= 0.25
        assert svc.backoff_delay(1, hint=3.0, remaining_ms=0.0) == 0.0

    def test_jitter_is_deterministic_per_seed(self):
        a = ServiceClient(jitter_seed=3, client_id="x")
        b = ServiceClient(jitter_seed=3, client_id="x")
        c = ServiceClient(jitter_seed=4, client_id="x")
        seq_a = [a.backoff_delay(n) for n in range(1, 6)]
        seq_b = [b.backoff_delay(n) for n in range(1, 6)]
        seq_c = [c.backoff_delay(n) for n in range(1, 6)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_retry_budget_bounds_total_retry_time(self):
        # Many retries configured, tiny budget: the call must give up
        # once the budget is spent, not sleep through all 50 backoffs.
        port = _free_port()  # nothing listening
        svc = ServiceClient("127.0.0.1", port, timeout=0.5, retries=50,
                            retry_backoff=0.05, retry_budget=0.3,
                            jitter_seed=1, circuit_threshold=1000)
        started = time.monotonic()
        with pytest.raises(TransportError):
            svc._request("ping")
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # far below 50 exponential backoffs

    def test_circuit_breaker_opens_and_half_opens(self):
        port = _free_port()
        svc = ServiceClient("127.0.0.1", port, timeout=0.2, retries=0,
                            circuit_threshold=2, circuit_cooldown=0.15,
                            jitter_seed=1)
        for _ in range(2):
            with pytest.raises(TransportError):
                svc._request("ping")
        assert svc.circuit_open
        with pytest.raises(CircuitOpenError):
            svc._request("ping")
        time.sleep(0.2)  # cooldown over: one trial allowed (and fails)
        with pytest.raises(TransportError):
            try:
                svc._request("ping")
            except CircuitOpenError:
                pytest.fail("half-open trial should reach the socket")
            raise
        assert svc.circuit_open  # the failed trial re-opened it

    def test_half_open_admits_exactly_one_concurrent_trial(self):
        # Callers racing the cooldown expiry must not all be admitted
        # at once (a thundering herd into a server that was overloaded
        # moments ago): exactly one trial goes through, the rest keep
        # failing fast until it resolves.
        svc = ServiceClient("127.0.0.1", 1, timeout=0.2, retries=0,
                            circuit_threshold=1, circuit_cooldown=0.05,
                            jitter_seed=1)
        svc._note_failure()
        assert svc.circuit_open
        time.sleep(0.1)  # cooldown elapsed: the circuit is half-open
        admitted, rejected = [], []
        barrier = threading.Barrier(6)

        def probe():
            barrier.wait()
            try:
                svc._check_circuit()
                admitted.append(1)
            except CircuitOpenError:
                rejected.append(1)

        threads = [threading.Thread(target=probe) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert len(admitted) == 1
        assert len(rejected) == 5
        # The trial failing re-opens the circuit for a full cooldown...
        svc._note_failure()
        assert svc.circuit_open
        # ...and succeeding closes it for everyone.
        svc._note_success()
        svc._check_circuit()

    def test_circuit_closes_on_success(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, circuit_threshold=2) as svc:
            svc._failures = 1
            assert svc.ping()
            assert svc._failures == 0


# ----------------------------------------------------------------------
# Protocol hardening
# ----------------------------------------------------------------------
class TestProtocolHardening:
    def test_negative_length_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_length(struct.pack(">I", protocol.MAX_FRAME + 9))

    def test_seeded_fuzz_never_kills_the_server(self, sum_server):
        handle, _ = sum_server
        rng = derive_rng(11, "fuzz")
        payloads = []
        for _ in range(80):
            choice = rng.random()
            if choice < 0.2:  # raw garbage bytes, bogus framing
                body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
                payloads.append(struct.pack(">I", len(body)) + body)
            elif choice < 0.35:  # length prefix lies about the body
                payloads.append(struct.pack(">I", rng.randrange(2**31, 2**32)))
            elif choice < 0.5:  # valid JSON, not an object
                body = b"[1, 2, 3]"
                payloads.append(struct.pack(">I", len(body)) + body)
            elif choice < 0.65:  # object, but nonsense fields
                body = b'{"op": "insert", "value": {}, "seq": -5, "client": 4}'
                payloads.append(struct.pack(">I", len(body)) + body)
            elif choice < 0.85:  # binary magic, then garbage
                body = bytes([protocol.BINARY_MAGIC]) + bytes(
                    rng.randrange(256) for _ in range(rng.randrange(0, 30))
                )
                payloads.append(struct.pack(">I", len(body)) + body)
            else:  # a valid binary frame, truncated mid-body
                frame = protocol.encode_frame(
                    {"op": "insert", "id": 1, "value": 2,
                     "start": 0, "end": 10},
                    codec=protocol.CODEC_BINARY,
                )
                cut = rng.randrange(5, len(frame))
                payloads.append(frame[:cut])
        for payload in payloads:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=2.0) as sock:
                try:
                    sock.sendall(payload)
                    sock.settimeout(1.0)
                    sock.recv(4096)  # error frame or hang-up; both fine
                except OSError:
                    pass
        # The server survived all of it and still answers.
        with client_for(handle) as svc:
            assert svc.ping()


# ----------------------------------------------------------------------
# Chaos proxy
# ----------------------------------------------------------------------
class TestChaosProxy:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(drop=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(delay_range=(0.5, 0.1))
        assert not ChaosPlan().active
        assert ChaosPlan(duplicate=0.1).active

    def test_transparent_when_inactive(self, sum_server):
        handle, _ = sum_server
        with ChaosProxy(handle.host, handle.port, plan=ChaosPlan(),
                        seed=1) as proxy:
            with ServiceClient(proxy.host, proxy.port, timeout=5.0) as svc:
                assert svc.ping()
                assert svc.insert(2, 10, 20) == 1
                assert svc.lookup(15) == 2
            assert proxy.total_injected == 0
            assert proxy.connections == 1

    def test_duplicated_frames_stay_exactly_once(self, sum_server):
        handle, sharded = sum_server
        plan = ChaosPlan(duplicate=0.6)
        facts = []
        with ChaosProxy(handle.host, handle.port, plan=plan, seed=5) as proxy:
            with ServiceClient(proxy.host, proxy.port, timeout=5.0,
                               retries=4, jitter_seed=5) as svc:
                rng = derive_rng(5, "workload")
                for i in range(30):
                    s = rng.randrange(0, 900)
                    e = s + rng.randrange(1, 80)
                    v = rng.randrange(1, 9)
                    svc.insert(v, s, e)
                    facts.append((v, (s, e)))
                for _ in range(15):
                    t = rng.randrange(0, 1000)
                    assert svc.lookup(t) == reference.instantaneous_value(
                        facts, "sum", t
                    )
            assert proxy.injected.get("duplicate", 0) > 0
        # Exactly once despite every duplicated request frame.
        assert sharded.facts_applied == len(facts)

    def test_derive_rng_reproducible(self):
        assert derive_rng(3, "conn", 1).random() == derive_rng(3, "conn", 1).random()
        assert derive_rng(3, "conn", 1).random() != derive_rng(3, "conn", 2).random()
