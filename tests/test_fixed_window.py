"""Unit tests for the fixed-window cumulative tree (Section 4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FixedWindowTree, Interval, POS_INF, SBTree, check_tree
from repro.core import reference
from repro.workloads import PRESCRIPTIONS


def build(kind, w):
    tree = FixedWindowTree(kind, window=w, branching=4, leaf_capacity=4)
    for p in PRESCRIPTIONS:
        tree.insert(p.dosage, p.valid)
    return tree


class TestConstruction:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            FixedWindowTree("sum", window=-1)

    def test_zero_window_is_instantaneous(self):
        fixed = build("sum", 0)
        plain = SBTree("sum", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            plain.insert(p.dosage, p.valid)
        assert fixed.to_table() == plain.to_table()

    def test_spec_exposed(self):
        assert build("avg", 5).spec.kind.value == "avg"


class TestEffectStretching:
    def test_contribution_extends_past_end(self):
        tree = FixedWindowTree("count", window=10, branching=4, leaf_capacity=4)
        tree.insert(1, Interval(0, 5))
        # Valid over [0, 5); within reach of windows ending in [0, 15).
        assert tree.lookup(0) == 1
        assert tree.lookup(14) == 1
        assert tree.lookup(15) == 0

    def test_infinite_end_not_stretched(self):
        tree = FixedWindowTree("sum", window=10, branching=4, leaf_capacity=4)
        tree.insert(3, Interval(5, POS_INF))
        assert tree.lookup(4) == 0
        assert tree.lookup(1e15) == 3

    def test_window_larger_than_history(self):
        tree = build("max", 1_000)
        # Every instant after day 5 sees the whole history's max.
        assert tree.lookup(900) == 4

    def test_deletion_symmetry(self):
        tree = build("avg", 5)
        before = tree.to_table()
        tree.insert(9, Interval(12, 60))
        tree.delete(9, Interval(12, 60))
        assert tree.to_table() == before
        check_tree(tree.tree)

    def test_minmax_deletion_rejected(self):
        tree = build("max", 5)
        with pytest.raises(ValueError):
            tree.delete(4, Interval(35, 45))

    def test_compact_minmax(self):
        tree = build("max", 20)
        table = tree.to_table()
        tree.compact()
        assert tree.to_table() == table
        check_tree(tree.tree, check_compact=True)


class TestQueries:
    def test_range_query_clipping(self):
        tree = build("avg", 5)
        got = tree.range_query(Interval(30, 40)).finalized(tree.spec).coalesce()
        assert got.value_at(32) == pytest.approx(1.75)

    def test_different_offsets_differ(self):
        """An index built for one offset cannot serve another (Section
        4.1's 'cannot be used for a different window offset')."""
        t5 = build("avg", 5)
        t0 = build("avg", 0)
        assert t5.to_table() != t0.to_table()

    @given(
        w=st.integers(0, 50),
        t=st.integers(-20, 120),
        extra=st.lists(
            st.tuples(st.integers(-5, 9), st.integers(0, 80), st.integers(1, 40)),
            max_size=15,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_oracle_agreement_with_churn(self, w, t, extra):
        tree = FixedWindowTree("sum", window=w, branching=4, leaf_capacity=4)
        facts = []
        for value, start, length in extra:
            interval = Interval(start, start + length)
            facts.append((value, interval))
            tree.insert(value, interval)
        # Delete every other fact again.
        for value, interval in facts[::2]:
            tree.delete(value, interval)
        live = [f for i, f in enumerate(facts) if i % 2 == 1]
        assert tree.lookup(t) == reference.cumulative_value(live, "sum", t, w)
