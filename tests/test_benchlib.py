"""Tests for the benchmark harness helpers."""

import math

import pytest

from repro.benchlib import (
    Series,
    fit_exponent,
    format_table,
    geometric_sizes,
    scaled,
    time_call,
)


class TestFitExponent:
    def test_linear(self):
        xs = [100, 200, 400, 800]
        assert fit_exponent(xs, [2 * x for x in xs]) == pytest.approx(1.0)

    def test_quadratic(self):
        xs = [100, 200, 400, 800]
        assert fit_exponent(xs, [x * x for x in xs]) == pytest.approx(2.0)

    def test_constant(self):
        xs = [100, 200, 400, 800]
        assert fit_exponent(xs, [7, 7, 7, 7]) == pytest.approx(0.0)

    def test_logarithmic_is_sublinear(self):
        xs = [100, 200, 400, 800]
        got = fit_exponent(xs, [math.log(x) for x in xs])
        assert 0 < got < 0.5

    def test_zero_measurements_clamped(self):
        # A cold-cache zero must not produce -inf logs.
        got = fit_exponent([1, 2, 4], [0.0, 1.0, 2.0])
        assert math.isfinite(got)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_exponent([1], [1])


class TestFormatTable:
    def test_alignment_and_values(self):
        text = format_table(["n", "time"], [[100, 0.5], [2000, 0.0123]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "n" in lines[0] and "time" in lines[0]
        assert "2000" in lines[2] or "2000" in lines[3]

    def test_small_floats_scientific(self):
        text = format_table(["x"], [[0.000012]])
        assert "e-05" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeries:
    def test_render_with_exponents(self):
        series = Series("n", [10, 20, 40])
        series.add("linear", [1, 2, 4])
        series.add("flat", [3, 3, 3])
        text = series.render()
        assert "~n^" in text
        assert series.exponent("linear") == pytest.approx(1.0)
        assert series.exponent("flat") == pytest.approx(0.0)

    def test_column_length_validated(self):
        series = Series("n", [1, 2, 3])
        with pytest.raises(ValueError):
            series.add("bad", [1, 2])

    def test_render_without_exponents(self):
        series = Series("w", [0, 5])  # zero x would break a log fit
        series.add("col", [1, 2])
        text = series.render(with_exponents=False)
        assert "~n^" not in text


class TestMisc:
    def test_geometric_sizes(self):
        assert geometric_sizes(250, 4) == [250, 500, 1000, 2000]
        assert geometric_sizes(10, 3, factor=3) == [10, 30, 90]

    def test_time_call_returns_positive(self):
        assert time_call(lambda: sum(range(1000))) > 0

    def test_time_call_best_of(self):
        calls = []
        time_call(lambda: calls.append(1), repeat=3)
        assert len(calls) == 3

    def test_scaled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scaled(100) == 100
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4")
        assert scaled(100) == 400
