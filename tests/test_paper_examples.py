"""Golden tests for the paper's worked examples (Figures 1-6, prose lookups).

Every expected value below is copied from the paper verbatim; these
tests pin the reproduction to the paper's own numbers.
"""

import pytest

from repro import (
    AggregateKind,
    DualTreeAggregate,
    FixedWindowTree,
    Interval,
    MSBTree,
    SBTree,
    check_tree,
)
from repro.workloads import PRESCRIPTIONS, prescription_facts


def build_tree(kind, b=4, l=4):
    tree = SBTree(kind, branching=b, leaf_capacity=l)
    for patient, dosage, valid in PRESCRIPTIONS:
        tree.insert(dosage, valid)
    return tree


def rows(table):
    return [(value, (interval.start, interval.end)) for value, interval in table]


class TestFigure3SumDosage:
    """SumDosage: instantaneous SUM over Prescription (Figure 3)."""

    EXPECTED = [
        (2, (5, 10)),
        (8, (10, 15)),
        (6, (15, 20)),
        (7, (20, 30)),
        (4, (30, 35)),
        (8, (35, 40)),
        (5, (40, 45)),
        (1, (45, 50)),
    ]

    def test_contents(self):
        tree = build_tree("sum")
        assert rows(tree.to_table()) == self.EXPECTED
        check_tree(tree)

    def test_contents_with_large_nodes(self):
        tree = build_tree("sum", b=32, l=48)
        assert rows(tree.to_table()) == self.EXPECTED

    def test_lookup_at_19_is_6(self):
        # Section 3.1's worked lookup: SumDosage at instant 19 is 6.
        tree = build_tree("sum")
        assert tree.lookup(19) == 6

    def test_value_at_15_20_is_6_per_intro(self):
        # Section 1: during [15, 20) Amy, Ben and Fred are active: 2+3+1.
        tree = build_tree("sum")
        for t in (15, 17, 19):
            assert tree.lookup(t) == 6
        # At time 20 Coy's prescription becomes active: value changes to 7.
        assert tree.lookup(20) == 7

    def test_range_query_14_28(self):
        # Section 3.2: rangeq over [14, 28) returns <8,[14,15)>, <6,[15,20)>,
        # <7,[20,28)>.
        tree = build_tree("sum")
        got = rows(tree.range_query(Interval(14, 28)))
        assert got == [(8, (14, 15)), (6, (15, 20)), (7, (20, 28))]

    def test_reconstruction_keeps_harmless_edges(self):
        # Section 3.2: the full reconstruction adds <0,(-inf,5)> and
        # <0,[50,inf)>.
        tree = build_tree("sum")
        full = tree.to_table(drop_initial=False)
        assert full.rows[0][0] == 0
        assert full.rows[0][1].start == float("-inf")
        assert full.rows[-1][0] == 0
        assert full.rows[-1][1].end == float("inf")


class TestFigure4AvgDosage:
    """AvgDosage: instantaneous AVG over Prescription (Figure 4)."""

    # Figure 4 as printed disagrees with the paper's own prose ("the
    # value of AvgDosage at time 32 is 4/3 = 1.33", Sections 4.1/4.2)
    # and with direct arithmetic over Figure 1; the values below follow
    # the prose (see DESIGN.md errata).
    EXPECTED = [
        (2.00, (5, 20)),
        (1.75, (20, 30)),
        (pytest.approx(4 / 3), (30, 35)),
        (2.00, (35, 40)),
        (2.50, (40, 45)),
        (1.00, (45, 50)),
    ]

    def test_contents(self):
        tree = build_tree("avg")
        table = tree.to_table().finalized(tree.spec).coalesce()
        assert rows(table) == self.EXPECTED

    def test_avg_at_32_is_4_thirds(self):
        # Section 4.1: the value of AvgDosage at time 32 is 4/3 = 1.33.
        tree = build_tree("avg")
        assert tree.lookup(32) == (4, 3)
        assert tree.lookup_final(32) == pytest.approx(4 / 3)


class TestFigure5AvgDosage5:
    """AvgDosage5: cumulative AVG with window offset 5 (Figure 5)."""

    # The fourth row of Figure 5 as extracted reads "2.50 [40, 50)",
    # which overlaps its neighbours; the SB-tree of Figure 18 (leaf
    # boundaries 45, 50) fixes it as 2.00 over [35,45) and 2.50 over
    # [45,50), matching direct arithmetic.
    EXPECTED = [
        (2.00, (5, 20)),
        (1.75, (20, 35)),
        (2.00, (35, 45)),
        (2.50, (45, 50)),
        (1.00, (50, 55)),
    ]

    @pytest.fixture()
    def fixed(self):
        tree = FixedWindowTree("avg", window=5, branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            tree.insert(dosage, valid)
        return tree

    def test_contents_fixed_window(self, fixed):
        table = fixed.to_table().finalized(fixed.spec).coalesce()
        assert rows(table) == self.EXPECTED

    def test_avg5_at_32_is_175(self, fixed):
        # Section 1: the value of AvgDosage5 at time 32 is 1.75 (computed
        # over Amy, Ben, Coy, and Fred).
        assert fixed.lookup(32) == (7, 4)
        assert fixed.lookup_final(32) == pytest.approx(1.75)

    def test_avg5_at_19_is_2(self, fixed):
        # Section 4.2's worked example: the value at time 19 is <8, 4>.
        assert fixed.lookup(19) == (8, 4)

    def test_contents_dual_tree(self):
        dual = DualTreeAggregate("avg", branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            dual.insert(dosage, valid)
        table = dual.window_table(5).finalized(dual.spec).coalesce()
        assert rows(table) == self.EXPECTED
        assert dual.window_lookup(19, 5) == (8, 4)
        assert dual.window_lookup(32, 5) == (7, 4)

    def test_window_zero_is_instantaneous(self):
        dual = DualTreeAggregate("avg", branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            dual.insert(dosage, valid)
        table = dual.window_table(0).finalized(dual.spec).coalesce()
        assert rows(table) == TestFigure4AvgDosage.EXPECTED


class TestFigure6MaxDosage20:
    """MaxDosage20: cumulative MAX with window offset 20 (Figure 6)."""

    EXPECTED = [
        (2, (5, 10)),
        (3, (10, 35)),
        (4, (35, 65)),
        (1, (65, 70)),
    ]

    def test_contents_fixed_window(self):
        tree = FixedWindowTree("max", window=20, branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            tree.insert(dosage, valid)
        assert rows(tree.to_table()) == self.EXPECTED

    def test_contents_msb_tree(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            msb.insert(dosage, valid)
        table = msb.window_query(Interval(0, 80), 20)
        interesting = [
            (value, span)
            for value, span in rows(table)
            if value is not None
        ]
        assert interesting == [
            (2, (5, 10)),
            (3, (10, 35)),
            (4, (35, 65)),
            (1, (65, 70)),
        ]

    def test_max20_at_50_is_4(self):
        # Section 4.3's worked mlookup: MaxDosage20 at time 50 is 4.
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            msb.insert(dosage, valid)
        assert msb.window_lookup(50, 20) == 4


class TestSection33InsertExamples:
    """The Gill / Hal / Ida insertion narratives of Section 3.3."""

    def test_gill_insert_updates_whole_range(self):
        # Inserting <"Gill", 5, [15, 45)> raises SumDosage by 5 on the
        # third through seventh constant intervals of Figure 3.
        tree = build_tree("sum")
        tree.insert(5, Interval(15, 45))
        assert rows(tree.to_table()) == [
            (2, (5, 10)),
            (8, (10, 15)),
            (11, (15, 20)),
            (12, (20, 30)),
            (9, (30, 35)),
            (13, (35, 40)),
            (10, (40, 45)),
            (1, (45, 50)),
        ]
        check_tree(tree)

    def test_hal_insert_splits_leaf_interval(self):
        # Inserting <"Hal", 1, [24, 30)> divides [20, 30) into [20, 24)
        # with value 6 and [24, 30) with value 7... relative to the tree
        # that already contains Gill? No: Section 3.3 speaks of the
        # original Figure 9 tree where [20, 30) has value 7; adding one
        # more gives [20,24)->7, [24,30)->8.
        tree = build_tree("sum")
        tree.insert(1, Interval(24, 30))
        table = rows(tree.to_table())
        assert (7, (20, 24)) in table
        assert (8, (24, 30)) in table

    def test_hal_narrow_insert_makes_three_intervals(self):
        tree = build_tree("sum")
        tree.insert(1, Interval(24, 28))
        table = rows(tree.to_table())
        assert (7, (20, 24)) in table
        assert (8, (24, 28)) in table
        assert (7, (28, 30)) in table

    def test_ida_insert_then_delete_roundtrip(self):
        # Section 3.4: inserting <"Ida", 1, [17, 47)> and then deleting it
        # restores the aggregate (Figures 10 -> 11 -> compaction -> 10).
        tree = build_tree("sum")
        before = rows(tree.to_table())
        tree.insert(1, Interval(17, 47))
        after_insert = rows(tree.to_table())
        assert after_insert != before
        assert (6, (15, 17)) in after_insert
        assert (7, (17, 20)) in after_insert  # 6 + 1 inside [17, 47)
        tree.delete(1, Interval(17, 47))
        assert rows(tree.to_table()) == before
        check_tree(tree)

    def test_negative_insert_equals_delete(self):
        # Section 3.6: inserting <"Jay", -1, [17, 47)> has the same effect
        # as deleting <"Iva", 1, [17, 47)>.
        t1 = build_tree("sum")
        t1.insert(1, Interval(17, 47))
        t1.delete(1, Interval(17, 47))
        t2 = build_tree("sum")
        t2.insert(1, Interval(17, 47))
        t2.insert(-1, Interval(17, 47))
        assert rows(t1.to_table()) == rows(t2.to_table())


class TestFigure24Roundtrip:
    """Figure 24: insert all prescriptions, delete them in reverse order.

    The first and last snapshots are both empty SB-trees: a root-only
    leaf with the single interval (-inf, inf) and value v0.
    """

    def test_roundtrip_to_empty(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for patient, dosage, valid in PRESCRIPTIONS:
            tree.insert(dosage, valid)
            check_tree(tree)
        for patient, dosage, valid in reversed(PRESCRIPTIONS):
            tree.delete(dosage, valid)
            check_tree(tree)
        assert tree.node_count() == 1
        root = tree.store.read(tree.store.get_root())
        assert root.is_leaf
        assert root.times == []
        assert root.values == [0]

    def test_roundtrip_all_kinds_invertible(self):
        for kind in ("sum", "count", "avg"):
            tree = SBTree(kind, branching=4, leaf_capacity=4)
            for patient, dosage, valid in PRESCRIPTIONS:
                tree.insert(dosage, valid)
            for patient, dosage, valid in PRESCRIPTIONS:
                tree.delete(dosage, valid)
            assert tree.node_count() == 1
            assert tree.to_table().rows == []


class TestMinMaxRestrictions:
    def test_min_max_reject_deletions(self):
        for kind in ("min", "max"):
            tree = build_tree(kind)
            with pytest.raises(ValueError):
                tree.delete(2, Interval(10, 40))

    def test_min_contents(self):
        tree = build_tree("min")
        tree.compact()
        table = rows(tree.to_table())
        # Hand-derived from Figure 2: min dosage per constant interval.
        assert table == [
            (2, (5, 10)),
            (1, (10, 50)),
        ]

    def test_max_contents(self):
        tree = build_tree("max")
        tree.compact()
        assert rows(tree.to_table()) == [
            (2, (5, 10)),
            (3, (10, 30)),
            (2, (30, 35)),
            (4, (35, 45)),
            (1, (45, 50)),
        ]
