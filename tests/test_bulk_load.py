"""Tests for bottom-up bulk loading and the rebuilt compact()."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConstantIntervalTable,
    Interval,
    MSBTree,
    NEG_INF,
    POS_INF,
    SBTree,
    check_tree,
)
from repro.core import reference
from repro.workloads import uniform

times = st.integers(min_value=0, max_value=120)
values = st.integers(min_value=-9, max_value=9)


@st.composite
def intervals(draw):
    start = draw(times)
    return Interval(start, start + draw(st.integers(min_value=1, max_value=60)))


facts_lists = st.lists(st.tuples(values, intervals()), min_size=0, max_size=30)


def full_table(tree):
    return tree.range_query(Interval(NEG_INF, POS_INF)).coalesce(tree.spec.eq)


class TestBulkLoad:
    @given(facts=facts_lists)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_contents(self, facts):
        source = SBTree("sum", branching=4, leaf_capacity=4)
        for value, interval in facts:
            source.insert(value, interval)
        table = full_table(source)
        target = SBTree("sum", branching=4, leaf_capacity=4)
        target.bulk_load(table)
        check_tree(target)
        assert target.to_table() == source.to_table()

    @given(facts=facts_lists)
    @settings(max_examples=30, deadline=None)
    def test_bulk_loaded_tree_accepts_updates(self, facts):
        tree = SBTree("count", branching=4, leaf_capacity=4)
        for value, interval in facts:
            tree.insert(value, interval)
        tree.bulk_load(full_table(tree))
        tree.insert(1, Interval(50, 90))
        check_tree(tree)
        live = facts + [(1, Interval(50, 90))]
        assert tree.to_table() == reference.instantaneous_table(live, "count")

    def test_empty_table(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(1, Interval(0, 10))
        tree.bulk_load(ConstantIntervalTable())
        assert tree.node_count() == 1
        assert tree.to_table().rows == []

    def test_partial_table_rejected(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        with pytest.raises(ValueError):
            tree.bulk_load(ConstantIntervalTable([(1, Interval(0, 10))]))

    def test_msb_annotations_rebuilt(self):
        facts = [(i % 11, Interval(i * 2, i * 2 + 7)) for i in range(150)]
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for value, interval in facts:
            msb.insert(value, interval)
        msb.bulk_load(full_table(msb))
        check_tree(msb)  # audits u-exactness
        for t in range(0, 320, 13):
            for w in (0, 5, 80):
                assert msb.window_lookup(t, w) == reference.cumulative_value(
                    facts, "max", t, w
                )

    def test_packed_leaves_are_near_full(self):
        tree = SBTree("count", branching=8, leaf_capacity=8)
        for i in range(400):
            tree.insert(1, Interval(2 * i, 2 * i + 1))
        incremental_nodes = tree.node_count()
        tree.bulk_load(full_table(tree))
        check_tree(tree)
        # Bottom-up packing beats incrementally split ~half-full nodes.
        assert tree.node_count() < incremental_nodes

    def test_chunking_respects_minimums(self):
        # 9 intervals at l=8 must not leave a 1-interval tail leaf.
        chunks = SBTree._chunk(9, 8, 4)
        assert sum(chunks) == 9
        assert all(4 <= c <= 8 for c in chunks)
        assert SBTree._chunk(3, 8, 4) == [3]  # lone chunk may be small
        for total in range(1, 200):
            chunks = SBTree._chunk(total, 8, 4)
            assert sum(chunks) == total
            if len(chunks) > 1:
                assert all(4 <= c <= 8 for c in chunks)


class TestCompactUsesBulkLoad:
    def test_compact_is_linear_packed(self):
        facts = uniform(500, horizon=20_000, max_duration=400, seed=5)
        tree = SBTree("max", branching=8, leaf_capacity=8)
        for value, interval in facts:
            tree.insert(value, interval)
        table_before = tree.to_table()
        tree.compact()
        check_tree(tree, check_compact=True)
        assert tree.to_table() == table_before

    def test_compact_empty_tree(self):
        tree = SBTree("min", branching=4, leaf_capacity=4)
        tree.compact()
        assert tree.node_count() == 1
        assert tree.lookup(0) is None
