"""Tests for the warehouse layer: maintained views, direct materialization,
the catalog, and persistence."""

import pytest

from repro import Interval, SBTree
from repro.core import reference
from repro.relation import TemporalRelation
from repro.warehouse import (
    ANY_WINDOW,
    MaterializedView,
    TemporalAggregateView,
    TemporalWarehouse,
)
from repro.workloads import PRESCRIPTIONS, prescription_facts


def load_prescriptions(relation):
    rows = []
    for p in PRESCRIPTIONS:
        rows.append(relation.insert(p.dosage, p.valid, patient=p.patient))
    return rows


# ----------------------------------------------------------------------
# Maintained views
# ----------------------------------------------------------------------
class TestTemporalAggregateView:
    def test_instantaneous_view_tracks_relation(self):
        rel = TemporalRelation("prescription")
        view = TemporalAggregateView("SumDosage", rel, "sum")
        rows = load_prescriptions(rel)
        assert view.value_at(19) == 6
        rel.delete(rows[0])  # Amy leaves
        assert view.value_at(19) == 4
        assert view.table() == reference.instantaneous_table(
            rel.facts(), "sum"
        ).finalized(view.spec)

    def test_view_over_existing_contents(self):
        rel = TemporalRelation("prescription")
        load_prescriptions(rel)
        view = TemporalAggregateView("SumDosage", rel, "sum")  # replay
        assert view.value_at(19) == 6

    def test_fixed_window_view(self):
        rel = TemporalRelation("prescription")
        view = TemporalAggregateView("AvgDosage5", rel, "avg", window=5)
        load_prescriptions(rel)
        assert view.value_at(32) == pytest.approx(1.75)

    def test_any_window_view_sum(self):
        rel = TemporalRelation("prescription")
        view = TemporalAggregateView("CumSum", rel, "sum", window=ANY_WINDOW)
        load_prescriptions(rel)
        for w in (0, 5, 20):
            for t in (12, 19, 32, 50):
                assert view.value_at(t, w) == reference.cumulative_value(
                    prescription_facts(), "sum", t, w
                )

    def test_any_window_view_max(self):
        rel = TemporalRelation("prescription")
        view = TemporalAggregateView("CumMax", rel, "max", window=ANY_WINDOW)
        load_prescriptions(rel)
        assert view.value_at(50, 20) == 4
        assert view.value_at(67, 20) == 1

    def test_window_argument_validation(self):
        rel = TemporalRelation("r")
        fixed = TemporalAggregateView("v1", rel, "sum", window=5)
        with pytest.raises(ValueError):
            fixed.value_at(10, 7)  # fixed views answer only their offset
        anyw = TemporalAggregateView("v2", rel, "sum", window=ANY_WINDOW)
        with pytest.raises(ValueError):
            anyw.value_at(10)  # must pass an offset
        with pytest.raises(ValueError):
            TemporalAggregateView("v3", rel, "sum", window=-1)

    def test_min_view_rejects_deletion(self):
        rel = TemporalRelation("r")
        TemporalAggregateView("v", rel, "min")
        row = rel.insert(1, Interval(0, 10))
        with pytest.raises(ValueError):
            rel.delete(row)

    def test_value_of_extractor(self):
        rel = TemporalRelation("r")
        view = TemporalAggregateView(
            "doubled", rel, "sum", value_of=lambda row: row.payload["weight"] * 2
        )
        rel.insert(0, Interval(0, 10), weight=3)
        assert view.value_at(5) == 6

    def test_detach_stops_maintenance(self):
        rel = TemporalRelation("r")
        view = TemporalAggregateView("v", rel, "sum")
        rel.insert(1, Interval(0, 10))
        view.detach()
        rel.insert(1, Interval(0, 10))
        assert view.value_at(5) == 1

    def test_any_window_table(self):
        rel = TemporalRelation("prescription")
        view = TemporalAggregateView("CumAvg", rel, "avg", window=ANY_WINDOW)
        load_prescriptions(rel)
        table = view.table(5)
        assert table.value_at(32) == pytest.approx(1.75)

    def test_compact_all_backings(self):
        rel = TemporalRelation("r")
        views = [
            TemporalAggregateView("a", rel, "sum"),
            TemporalAggregateView("b", rel, "sum", window=ANY_WINDOW),
            TemporalAggregateView("c", rel, "max", window=ANY_WINDOW),
        ]
        rel.insert(3, Interval(0, 50))
        rel.insert(1, Interval(10, 20))
        for view in views:
            view.compact()
        assert views[0].value_at(15) == 4
        assert views[1].value_at(15, 0) == 4
        assert views[2].value_at(15, 0) == 3


# ----------------------------------------------------------------------
# Direct materialization comparator
# ----------------------------------------------------------------------
class TestMaterializedView:
    def test_matches_oracle(self):
        view = MaterializedView("sum")
        for value, interval in prescription_facts():
            view.insert(value, interval)
        assert view.to_table() == reference.instantaneous_table(
            prescription_facts(), "sum"
        )
        assert view.lookup(19) == 6

    def test_intro_example_touches_most_rows(self):
        """Section 1: inserting Gill [15, 45) updates 5 of the 8 rows."""
        view = MaterializedView("sum")
        for value, interval in prescription_facts():
            view.insert(value, interval)
        before = view.rows_touched
        view.insert(5, Interval(15, 45))
        # [15,20) [20,30) [30,35) [35,40) [40,45): five rows rewritten.
        assert view.rows_touched - before == 5

    def test_long_interval_touches_linear_rows(self):
        view = MaterializedView("sum")
        tree = SBTree("sum", branching=8, leaf_capacity=8)
        for i in range(100):
            view.insert(1, Interval(i * 10, i * 10 + 5))
            tree.insert(1, Interval(i * 10, i * 10 + 5))
        before = view.rows_touched
        span = Interval(0, 1000)
        view.insert(1, span)
        touched = view.rows_touched - before
        assert touched > 150  # every constant interval under the span
        stats = tree.store.stats.snapshot()
        tree.insert(1, span)
        node_touches = (tree.store.stats - stats).reads
        assert node_touches < 25  # O(height), the SB-tree advantage

    def test_delete_restores(self):
        view = MaterializedView("count")
        view.insert(1, Interval(0, 10))
        view.insert(1, Interval(5, 15))
        view.delete(1, Interval(5, 15))
        assert view.to_table() == reference.instantaneous_table(
            [(1, Interval(0, 10))], "count"
        )
        view.delete(1, Interval(0, 10))
        assert view.row_count == 1

    def test_random_against_oracle(self):
        import random

        rng = random.Random(3)
        view = MaterializedView("sum")
        facts = []
        for _ in range(200):
            start = rng.randrange(500)
            interval = Interval(start, start + rng.randrange(1, 100))
            value = rng.randint(-5, 5)
            facts.append((value, interval))
            view.insert(value, interval)
        assert view.to_table() == reference.instantaneous_table(facts, "sum")


# ----------------------------------------------------------------------
# Warehouse catalog
# ----------------------------------------------------------------------
class TestTemporalWarehouse:
    def test_catalog_roundtrip(self):
        wh = TemporalWarehouse()
        rel = wh.create_table("prescription")
        view = wh.create_view("SumDosage", "prescription", "sum")
        load_prescriptions(rel)
        assert wh.view("SumDosage") is view
        assert wh.table("prescription") is rel
        assert view.value_at(19) == 6

    def test_duplicate_names_rejected(self):
        wh = TemporalWarehouse()
        wh.create_table("t")
        with pytest.raises(ValueError):
            wh.create_table("t")
        wh.create_view("v", "t", "sum")
        with pytest.raises(ValueError):
            wh.create_view("v", "t", "sum")

    def test_drop_view_detaches(self):
        wh = TemporalWarehouse()
        rel = wh.create_table("t")
        view = wh.create_view("v", "t", "sum")
        wh.drop_view("v")
        rel.insert(1, Interval(0, 10))
        assert view.value_at(5) == 0

    def test_drop_view_removes_persistent_files(self, tmp_path):
        import os

        directory = str(tmp_path / "wh")
        with TemporalWarehouse(directory) as wh:
            rel = wh.create_table("t")
            wh.create_view("v", "t", "sum", persistent=True)
            wh.create_view("cum", "t", "avg", window=ANY_WINDOW, persistent=True)
            rel.insert(4, Interval(0, 10))
            for name, backings in (("v", 1), ("cum", 2)):
                paths = [f"{directory}/{name}.sbt"]
                if backings == 2:
                    paths.append(f"{directory}/{name}.ended.sbt")
                for path in paths:
                    assert os.path.exists(path)
                wh.drop_view(name)
                # Dropping closes and removes the page stores (and any
                # leftover journals); nothing leaks on disk.
                for path in paths:
                    assert not os.path.exists(path)
                    assert not os.path.exists(path + "-journal")

    def test_drop_table_refuses_while_views_depend(self):
        wh = TemporalWarehouse()
        rel = wh.create_table("t")
        wh.create_view("v", "t", "sum")
        with pytest.raises(ValueError, match="v"):
            wh.drop_table("t")
        wh.drop_view("v")
        wh.drop_table("t")
        with pytest.raises(KeyError):
            wh.table("t")
        # The relation object itself survives for anyone still holding it.
        rel.insert(1, Interval(0, 5))

    def test_drop_table_refuses_while_dynamic_views_depend(self):
        wh = TemporalWarehouse()
        wh.create_table("t")
        wh.dynamic.attach_table("t", wh.table("t"))
        wh.dynamic.create_view("dv", "t", "sum", lag="downstream")
        with pytest.raises(ValueError, match="dv"):
            wh.drop_table("t")
        wh.dynamic.drop_view("dv")
        wh.drop_table("t")
        assert "t" not in wh.dynamic.table_names()

    def test_drop_table_unknown(self):
        wh = TemporalWarehouse()
        with pytest.raises(KeyError):
            wh.drop_table("missing")

    def test_persistent_view_requires_directory(self):
        wh = TemporalWarehouse()
        wh.create_table("t")
        with pytest.raises(ValueError):
            wh.create_view("v", "t", "sum", persistent=True)

    def test_persistent_views_survive_reopen(self, tmp_path):
        directory = str(tmp_path / "wh")
        with TemporalWarehouse(directory) as wh:
            rel = wh.create_table("prescription")
            wh.create_view("SumDosage", "prescription", "sum", persistent=True)
            load_prescriptions(rel)
        # Reopen the page file directly: the index is all on disk.
        from repro.storage import PagedNodeStore

        with PagedNodeStore(f"{directory}/SumDosage.sbt") as store:
            tree = SBTree(store=store)
            assert tree.lookup(19) == 6

    def test_journaled_view_requires_persistence(self):
        wh = TemporalWarehouse()
        wh.create_table("t")
        with pytest.raises(ValueError):
            wh.create_view("v", "t", "sum", journaled=True)

    def test_journaled_view_survives_crash(self, tmp_path):
        directory = str(tmp_path / "wh")
        wh = TemporalWarehouse(directory)
        rel = wh.create_table("prescription")
        view = wh.create_view(
            "SumDosage", "prescription", "sum", persistent=True, journaled=True
        )
        rows = load_prescriptions(rel)
        wh.checkpoint()  # durable snapshot
        committed = view.table()
        rel.insert(100, Interval(0, 1000))  # uncommitted
        store = view.index.store
        store.buffer.flush()
        store.pager._file.flush()
        store.pager._file.close()  # simulated crash

        from repro.storage import PagedNodeStore

        with PagedNodeStore(f"{directory}/SumDosage.sbt", journaled=True) as s:
            recovered = SBTree(store=s)
            assert (
                recovered.to_table().finalized(recovered.spec).coalesce()
                == committed
            )

    def test_persistent_msb_any_window_view(self, tmp_path):
        """ANY_WINDOW MIN/MAX views persist as a single MSB-tree file."""
        directory = str(tmp_path / "wh")
        with TemporalWarehouse(directory) as wh:
            rel = wh.create_table("t")
            view = wh.create_view(
                "worst", "t", "max", window=ANY_WINDOW, persistent=True
            )
            rel.insert(7, Interval(0, 10))
            rel.insert(3, Interval(20, 30))
            assert view.value_at(25, 20) == 7
        import os

        assert os.path.exists(f"{directory}/worst.sbt")
        assert not os.path.exists(f"{directory}/worst.ended.sbt")

    def test_double_close_is_safe(self, tmp_path):
        directory = str(tmp_path / "wh")
        wh = TemporalWarehouse(directory)
        rel = wh.create_table("t")
        wh.create_view("v", "t", "sum", persistent=True)
        rel.insert(1, Interval(0, 10))
        wh.close()
        wh.close()  # idempotent

    def test_persistent_any_window_view(self, tmp_path):
        directory = str(tmp_path / "wh")
        with TemporalWarehouse(directory) as wh:
            rel = wh.create_table("t")
            view = wh.create_view(
                "cum", "t", "avg", window=ANY_WINDOW, persistent=True
            )
            rel.insert(4, Interval(0, 10))
            rel.insert(2, Interval(5, 20))
            assert view.value_at(15, 10) == pytest.approx(3.0)
        import os

        assert os.path.exists(f"{directory}/cum.sbt")
        assert os.path.exists(f"{directory}/cum.ended.sbt")
