"""Edge-case tests for the SB-tree beyond the paper's worked examples."""

import math

import pytest

from repro import Interval, MemoryNodeStore, NEG_INF, POS_INF, SBTree, check_tree
from repro.core import reference


class TestConstruction:
    def test_capacities_validated(self):
        with pytest.raises(ValueError):
            SBTree("sum", branching=3)
        with pytest.raises(ValueError):
            SBTree("sum", branching=8, leaf_capacity=2)

    def test_new_tree_needs_kind(self):
        with pytest.raises(ValueError):
            SBTree(store=MemoryNodeStore())

    def test_store_without_kind_metadata_rejected(self):
        store = MemoryNodeStore()
        SBTree("sum", store)
        store._meta.clear()
        with pytest.raises(ValueError):
            SBTree(store=store)

    def test_reattach_to_memory_store(self):
        store = MemoryNodeStore()
        tree = SBTree("sum", store, branching=4, leaf_capacity=4)
        tree.insert(5, Interval(0, 10))
        again = SBTree(store=store)
        assert again.lookup(5) == 5
        assert again.b == 4

    def test_kind_mismatch_on_reattach(self):
        store = MemoryNodeStore()
        SBTree("sum", store)
        with pytest.raises(ValueError):
            SBTree("avg", store)


class TestEmptyTree:
    def test_lookup_everywhere_is_initial(self):
        tree = SBTree("sum")
        for t in (-1e12, 0, 1e12):
            assert tree.lookup(t) == 0
        assert SBTree("min").lookup(0) is None

    def test_to_table_empty(self):
        assert SBTree("count").to_table().rows == []

    def test_full_reconstruction_is_one_row(self):
        table = SBTree("sum").to_table(drop_initial=False)
        assert table.rows == [(0, Interval(NEG_INF, POS_INF))]

    def test_compact_on_empty(self):
        tree = SBTree("max")
        tree.compact()
        assert tree.node_count() == 1


class TestUnboundedEffects:
    def test_right_unbounded_effect(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert_effect(5, Interval(10, POS_INF))
        assert tree.lookup(9) == 0
        assert tree.lookup(10) == 5
        assert tree.lookup(1e15) == 5
        check_tree(tree)

    def test_left_unbounded_effect(self):
        tree = SBTree("count", branching=4, leaf_capacity=4)
        tree.insert_effect(1, Interval(NEG_INF, 10))
        assert tree.lookup(-1e15) == 1
        assert tree.lookup(10) == 0

    def test_whole_line_effect(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert_effect(7, Interval(NEG_INF, POS_INF))
        assert tree.lookup(0) == 7
        assert tree.node_count() == 1  # recorded at the root, no cuts
        tree.insert_effect(-7, Interval(NEG_INF, POS_INF))
        assert tree.lookup(0) == 0

    def test_unbounded_mixed_with_bounded(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        facts = [(1, Interval(i * 3, i * 3 + 5)) for i in range(30)]
        for v, i in facts:
            tree.insert(v, i)
        tree.insert_effect(100, Interval(40, POS_INF))
        assert tree.lookup(39) == reference.instantaneous_value(facts, "sum", 39)
        assert (
            tree.lookup(1000)
            == reference.instantaneous_value(facts, "sum", 1000) + 100
        )
        check_tree(tree)


class TestDegenerateUpdates:
    def test_zero_sum_insert_is_noop(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(3, Interval(0, 10))
        before = tree.to_table()
        tree.insert(0, Interval(2, 8))  # zero effect: no cuts created
        assert tree.to_table() == before
        assert tree.node_count() == 1

    def test_insert_exact_duplicate_then_delete_both(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(3, Interval(0, 10))
        tree.insert(3, Interval(0, 10))
        assert tree.lookup(5) == 6
        tree.delete(3, Interval(0, 10))
        tree.delete(3, Interval(0, 10))
        assert tree.to_table().rows == []

    def test_adjacent_intervals_do_not_merge_across_gap(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(3, Interval(0, 10))
        tree.insert(3, Interval(10, 20))  # touching, same value: coalesce
        assert tree.to_table().rows == [(3, Interval(0, 20))]

    def test_point_like_smallest_interval(self):
        tree = SBTree("count", branching=4, leaf_capacity=4)
        tree.insert(1, Interval(5, 6))
        assert tree.lookup(5) == 1
        assert tree.lookup(6) == 0
        assert tree.lookup(4) == 0

    def test_delete_never_inserted_goes_negative(self):
        # The structure faithfully records whatever effects it is given;
        # "deleting" an absent tuple yields negative values (the caller
        # owns base-table integrity, as in the paper's warehouse model).
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.delete(5, Interval(0, 10))
        assert tree.lookup(5) == -5
        check_tree(tree)


class TestFloatTimes:
    def test_float_boundaries(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(1, Interval(0.5, 2.75))
        tree.insert(2, Interval(1.25, 3.5))
        assert tree.lookup(0.5) == 1
        assert tree.lookup(1.3) == 3
        assert tree.lookup(2.75) == 2
        assert tree.lookup(3.5) == 0
        check_tree(tree)

    def test_negative_times(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(4, Interval(-100, -50))
        tree.insert(2, Interval(-75, 25))
        assert tree.lookup(-80) == 4
        assert tree.lookup(-60) == 6
        assert tree.lookup(0) == 2
        assert tree.to_table() == reference.instantaneous_table(
            [(4, Interval(-100, -50)), (2, Interval(-75, 25))], "sum"
        )


class TestDeepTrees:
    def test_many_disjoint_intervals(self):
        tree = SBTree("count", branching=4, leaf_capacity=4)
        n = 800
        for i in range(n):
            tree.insert(1, Interval(2 * i, 2 * i + 1))
        check_tree(tree)
        assert tree.height >= 4
        assert tree.lookup(2 * (n // 2)) == 1
        assert tree.lookup(2 * (n // 2) + 1) == 0
        # Tear it all down again.
        for i in range(n):
            tree.delete(1, Interval(2 * i, 2 * i + 1))
        assert tree.node_count() == 1

    def test_nested_intervals(self):
        # Concentric intervals exercise fully-covered interior updates at
        # every level.
        tree = SBTree("count", branching=4, leaf_capacity=4)
        n = 150
        facts = [(1, Interval(i, 2 * n - i)) for i in range(n)]
        for v, i in facts:
            tree.insert(v, i)
        check_tree(tree)
        assert tree.to_table() == reference.instantaneous_table(facts, "count")
        assert tree.lookup(n) == n

    def test_identical_heavy_overlap(self):
        tree = SBTree("count", branching=4, leaf_capacity=4)
        for _ in range(500):
            tree.insert(1, Interval(10, 20))
        assert tree.lookup(15) == 500
        assert tree.node_count() == 1  # one constant interval, no growth
        for _ in range(500):
            tree.delete(1, Interval(10, 20))
        assert tree.to_table().rows == []


class TestStatsAccounting:
    def test_store_stats_track_operations(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        before = tree.store.stats.snapshot()
        tree.insert(1, Interval(0, 10))
        delta = tree.store.stats - before
        assert delta.reads >= 1
        assert delta.writes >= 1

    def test_lookup_reads_equal_height(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for i in range(200):
            tree.insert(1, Interval(i, i + 3))
        h = tree.height
        before = tree.store.stats.snapshot()
        tree.lookup(100)
        assert (tree.store.stats - before).reads == h


class TestRangeQueryEdges:
    def test_query_outside_data(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(5, Interval(100, 200))
        assert tree.range_query(Interval(0, 50)).rows == [(0, Interval(0, 50))]
        assert tree.range_query(Interval(300, 400)).rows == [(0, Interval(300, 400))]

    def test_query_exactly_one_constant_interval(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(5, Interval(100, 200))
        assert tree.range_query(Interval(100, 200)).rows == [(5, Interval(100, 200))]

    def test_query_single_instant_width(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(5, Interval(100, 200))
        got = tree.range_query(Interval(150, 151))
        assert got.rows == [(5, Interval(150, 151))]

    def test_query_accepts_tuples(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(5, (100, 200))
        assert tree.lookup(150) == 5
        assert len(tree.range_query((0, 300))) >= 1
