"""Tests for the temporal query layer."""

import pytest

from repro import Interval
from repro.core import reference
from repro.query import TemporalQuery
from repro.relation import TemporalRelation
from repro.workloads import PRESCRIPTIONS, prescription_facts


@pytest.fixture()
def prescriptions():
    rel = TemporalRelation("prescription")
    for p in PRESCRIPTIONS:
        rel.insert(p.dosage, p.valid, patient=p.patient)
    return rel


def rows(table):
    return [(value, (interval.start, interval.end)) for value, interval in table]


class TestBasicQueries:
    def test_sum_table_is_figure3(self, prescriptions):
        table = TemporalQuery(prescriptions).aggregate("sum").table()
        assert rows(table) == [
            (2, (5, 10)),
            (8, (10, 15)),
            (6, (15, 20)),
            (7, (20, 30)),
            (4, (30, 35)),
            (8, (35, 40)),
            (5, (40, 45)),
            (1, (45, 50)),
        ]

    def test_at_instant(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("sum")
        assert q.at(19) == 6
        assert q.at(1000) == 0

    def test_avg_finalized(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("avg")
        assert q.at(32) == pytest.approx(4 / 3)

    def test_min_max(self, prescriptions):
        assert TemporalQuery(prescriptions).aggregate("max").at(37) == 4
        assert TemporalQuery(prescriptions).aggregate("min").at(37) == 1

    def test_missing_aggregate_raises(self, prescriptions):
        with pytest.raises(ValueError):
            TemporalQuery(prescriptions).table()

    def test_over_interval(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("sum")
        got = q.over(Interval(14, 28))
        assert rows(got) == [(8, (14, 15)), (6, (15, 20)), (7, (20, 28))]

    def test_over_pads_gaps_with_initial(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("sum")
        got = q.over(Interval(0, 8))
        assert rows(got) == [(0, (0, 5)), (2, (5, 8))]


class TestFilters:
    def test_where_filters_tuples(self, prescriptions):
        q = (
            TemporalQuery(prescriptions)
            .where(lambda row: row.payload["patient"] != "Fred")
            .aggregate("sum")
        )
        assert q.at(19) == 5  # Amy + Ben, without Fred's 1

    def test_where_conjunction(self, prescriptions):
        # At t=12 the candidates are Ben (dosage 3) and Dan (dosage 2);
        # Amy is excluded by name, Fred by dosage.
        q = (
            TemporalQuery(prescriptions)
            .where(lambda row: row.value >= 2)
            .where(lambda row: row.payload["patient"] != "Amy")
            .aggregate("count")
        )
        assert q.at(12) == 2

    def test_where_conjunction_matches_manual_filter(self, prescriptions):
        live = [
            p for p in PRESCRIPTIONS
            if p.dosage >= 2 and p.patient != "Amy" and p.valid.contains(12)
        ]
        q = (
            TemporalQuery(prescriptions)
            .where(lambda row: row.value >= 2)
            .where(lambda row: row.payload["patient"] != "Amy")
            .aggregate("count")
        )
        assert q.at(12) == len(live)

    def test_value_extractor(self, prescriptions):
        q = (
            TemporalQuery(prescriptions)
            .value(lambda row: row.value * 10)
            .aggregate("sum")
        )
        assert q.at(19) == 60

    def test_builders_do_not_mutate(self, prescriptions):
        base = TemporalQuery(prescriptions).aggregate("sum")
        filtered = base.where(lambda row: row.value > 2)
        assert base.at(19) == 6
        assert filtered.at(19) == 3  # only Ben


class TestCumulativeQueries:
    def test_window_table_is_figure5(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("avg").window(5)
        assert rows(q.table()) == [
            (2.00, (5, 20)),
            (1.75, (20, 35)),
            (2.00, (35, 45)),
            (2.50, (45, 50)),
            (1.00, (50, 55)),
        ]

    def test_window_at_matches_oracle(self, prescriptions):
        q = TemporalQuery(prescriptions).aggregate("max").window(20)
        for t in (5, 30, 50, 64, 65, 69):
            expected = reference.cumulative_value(
                prescription_facts(), "max", t, 20
            )
            assert q.at(t) == expected

    def test_negative_window_rejected(self, prescriptions):
        with pytest.raises(ValueError):
            TemporalQuery(prescriptions).aggregate("sum").window(-1)


class TestPartitionedQueries:
    def test_per_patient_tables(self, prescriptions):
        per_patient = (
            TemporalQuery(prescriptions)
            .aggregate("sum")
            .partition_by(lambda row: row.payload["patient"])
            .tables()
        )
        assert set(per_patient) == {p.patient for p in PRESCRIPTIONS}
        assert rows(per_patient["Amy"]) == [(2, (10, 40))]
        assert rows(per_patient["Fred"]) == [(1, (10, 50))]

    def test_partition_at_instant(self, prescriptions):
        values = (
            TemporalQuery(prescriptions)
            .aggregate("count")
            .partition_by(lambda row: row.payload["patient"])
            .at(19)
        )
        assert values["Amy"] == 1
        assert values["Dan"] == 0  # Dan's prescription ended at 15

    def test_partition_respects_filter(self, prescriptions):
        per_patient = (
            TemporalQuery(prescriptions)
            .where(lambda row: row.value >= 2)
            .aggregate("sum")
            .partition_by(lambda row: row.payload["patient"])
            .tables()
        )
        assert "Fred" not in per_patient  # dosage 1 filtered out
        assert "Amy" in per_patient


class TestMaterialization:
    def test_materialized_view_tracks_changes(self, prescriptions):
        view = (
            TemporalQuery(prescriptions)
            .aggregate("sum")
            .materialize("SumDosage", branching=4, leaf_capacity=4)
        )
        assert view.value_at(19) == 6
        prescriptions.insert(5, Interval(15, 45), patient="Gill")
        assert view.value_at(19) == 11

    def test_materialized_view_respects_filter(self, prescriptions):
        view = (
            TemporalQuery(prescriptions)
            .where(lambda row: row.payload["patient"] != "Fred")
            .aggregate("sum")
            .materialize("NoFred", branching=4, leaf_capacity=4)
        )
        assert view.value_at(19) == 5
        # Matching and non-matching updates.
        prescriptions.insert(7, Interval(0, 100), patient="Fred")  # filtered
        assert view.value_at(19) == 5
        gill = prescriptions.insert(5, Interval(15, 45), patient="Gill")
        assert view.value_at(19) == 10
        prescriptions.delete(gill)
        assert view.value_at(19) == 5

    def test_materialized_window_view(self, prescriptions):
        view = (
            TemporalQuery(prescriptions)
            .aggregate("avg")
            .window(5)
            .materialize("AvgDosage5", branching=4, leaf_capacity=4)
        )
        assert view.value_at(32) == pytest.approx(1.75)

    def test_query_and_view_agree_after_churn(self, prescriptions):
        query = TemporalQuery(prescriptions).aggregate("sum")
        view = query.materialize("v", branching=4, leaf_capacity=4)
        inserted = [
            prescriptions.insert(i % 5 + 1, Interval(i * 2, i * 2 + 30))
            for i in range(40)
        ]
        for row in inserted[::3]:
            prescriptions.delete(row)
        assert view.table() == query.table()
