"""Tests for the TQL mini-language: tokenizer, parser, evaluation."""

import pytest

from repro import Interval
from repro.relation import TemporalRelation
from repro.tql import Statement, TQLError, execute, parse
from repro.workloads import PRESCRIPTIONS


@pytest.fixture()
def relations():
    rel = TemporalRelation("prescription")
    for p in PRESCRIPTIONS:
        rel.insert(p.dosage, p.valid, patient=p.patient)
    return {"prescription": rel}


def rows(table):
    return [(value, (interval.start, interval.end)) for value, interval in table]


class TestParser:
    def test_minimal_statement(self):
        got = parse("SUM(value) OVER prescription")
        assert got == Statement("sum", "value", "prescription")

    def test_case_insensitive_keywords(self):
        got = parse("sum(dosage) over prescription window 5 at 32")
        assert got.aggregate == "sum"
        assert got.field == "dosage"
        assert got.window == 5
        assert got.at == 32

    def test_during_clause(self):
        got = parse("MAX(value) OVER r DURING [14, 28)")
        assert got.during == (14, 28)

    def test_partition_clause(self):
        got = parse("COUNT(value) OVER r PARTITION BY patient")
        assert got.partition_field == "patient"

    def test_when_condition_parsed(self):
        got = parse("SUM(value) OVER r WHEN patient != 'Dan' AND value >= 2")
        assert got.condition is not None

    def test_float_and_negative_numbers(self):
        got = parse("SUM(value) OVER r WINDOW 2.5 AT -10")
        assert got.window == 2.5
        assert got.at == -10

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "MEDIAN(value) OVER r",
            "SUM value OVER r",
            "SUM(value) r",
            "SUM(value) OVER r AT 1 DURING [0, 5)",
            "SUM(value) OVER r WINDOW",
            "SUM(value) OVER r WHEN value >",
            "SUM(value) OVER r WINDOW 1 WINDOW 2",
            "SUM(value) OVER r BOGUS 3",
            "SUM(value) OVER r WHEN value ~ 3",
        ],
    )
    def test_malformed_statements(self, bad):
        with pytest.raises(TQLError):
            parse(bad)

    def test_not_and_parentheses(self):
        got = parse("SUM(value) OVER r WHEN NOT (a = 1 OR b = 2)")
        assert got.condition.op == "not"


class TestExecution:
    def test_full_table_is_figure3(self, relations):
        table = execute("SUM(value) OVER prescription", relations)
        assert rows(table)[0] == (2, (5, 10))
        assert rows(table)[-1] == (1, (45, 50))

    def test_at_instant(self, relations):
        assert execute("SUM(value) OVER prescription AT 19", relations) == 6

    def test_payload_field_aggregation(self, relations):
        # Aggregate the dosage via its payload name... dosage is the
        # value column here, so use a payload-based filter instead.
        got = execute(
            "SUM(value) OVER prescription WHEN patient = 'Amy' AT 19", relations
        )
        assert got == 2

    def test_during_range(self, relations):
        table = execute("SUM(value) OVER prescription DURING [14, 28)", relations)
        assert rows(table) == [(8, (14, 15)), (6, (15, 20)), (7, (20, 28))]

    def test_window_clause(self, relations):
        got = execute("AVG(value) OVER prescription WINDOW 5 AT 32", relations)
        assert got == pytest.approx(1.75)

    def test_condition_combinators(self, relations):
        got = execute(
            "COUNT(value) OVER prescription "
            "WHEN value >= 2 AND NOT patient = 'Amy' AT 12",
            relations,
        )
        assert got == 2  # Ben and Dan

    def test_or_condition(self, relations):
        got = execute(
            "COUNT(value) OVER prescription "
            "WHEN patient = 'Amy' OR patient = 'Fred' AT 19",
            relations,
        )
        assert got == 2

    def test_partitioned_at(self, relations):
        got = execute(
            "COUNT(value) OVER prescription PARTITION BY patient AT 19", relations
        )
        assert got["Amy"] == 1
        assert got["Dan"] == 0

    def test_partitioned_tables(self, relations):
        got = execute(
            "SUM(value) OVER prescription PARTITION BY patient", relations
        )
        assert rows(got["Amy"]) == [(2, (10, 40))]

    def test_partitioned_during(self, relations):
        got = execute(
            "SUM(value) OVER prescription PARTITION BY patient DURING [10, 20)",
            relations,
        )
        assert rows(got["Amy"]) == [(2, (10, 20))]

    def test_min_max(self, relations):
        assert execute("MAX(value) OVER prescription AT 37", relations) == 4
        assert execute("MIN(value) OVER prescription AT 37", relations) == 1

    def test_unknown_relation(self, relations):
        with pytest.raises(TQLError, match="unknown relation"):
            execute("SUM(value) OVER nothere", relations)

    def test_unknown_field_in_condition(self, relations):
        with pytest.raises(TQLError, match="no field"):
            execute("SUM(value) OVER prescription WHEN bogus = 1 AT 0", relations)

    def test_string_escapes(self, relations):
        rel = relations["prescription"]
        rel.insert(9, Interval(0, 5), patient="O'Neil")
        got = execute(
            "SUM(value) OVER prescription WHEN patient = 'O\\'Neil' AT 2",
            relations,
        )
        assert got == 9

    def test_results_match_query_layer(self, relations):
        from repro.query import TemporalQuery

        text = execute(
            "AVG(value) OVER prescription WHEN value >= 2 WINDOW 5", relations
        )
        api = (
            TemporalQuery(relations["prescription"])
            .where(lambda row: row.value >= 2)
            .aggregate("avg")
            .window(5)
            .table()
        )
        assert text == api
