"""Tests for journal-shipping replication: the record codec, the
commit log, a live primary/replica pair, promotion, client routing,
and the failover drill's reporting."""

import base64
import time

import pytest

from repro.rescheck import RescheckResult
from repro.service import (
    CommitLog,
    ReplicationError,
    ServerHandle,
    ServiceClient,
    ServiceError,
    decode_records,
    encode_records,
    protocol,
    render_top,
)
from repro.service.chaos import ChaosPlan
from repro.sharding import ShardedTree


# ----------------------------------------------------------------------
# Record blob codec
# ----------------------------------------------------------------------
class TestRecordCodec:
    def test_round_trip(self):
        records = [
            {"facts": [[5, 10, 20], [3, 15, 30]]},
            {"facts": [[1, 0, 100]], "idem": ["client-a", 7, {"applied": 1}]},
        ]
        assert decode_records(encode_records(records)) == records

    def test_empty_batch(self):
        assert decode_records(encode_records([])) == []

    def test_crc_corruption_rejects_whole_batch(self):
        blob = encode_records([{"facts": [[5, 10, 20]]}, {"facts": [[6, 1, 2]]}])
        raw = bytearray(base64.b64decode(blob))
        raw[-2] ^= 0xFF  # flip a byte inside the LAST record's payload
        with pytest.raises(ReplicationError, match="CRC"):
            decode_records(base64.b64encode(bytes(raw)).decode("ascii"))

    def test_truncated_blob_rejected(self):
        blob = encode_records([{"facts": [[5, 10, 20]]}])
        raw = base64.b64decode(blob)[:-3]
        with pytest.raises(ReplicationError, match="truncated"):
            decode_records(base64.b64encode(raw).decode("ascii"))

    def test_non_string_blob_rejected(self):
        with pytest.raises(ReplicationError):
            decode_records(12345)


# ----------------------------------------------------------------------
# Commit log
# ----------------------------------------------------------------------
class TestCommitLog:
    def test_append_numbers_from_base(self):
        log = CommitLog(base=10)
        assert log.head == 10
        assert log.append("aa", now=1.0) == 11
        assert log.append("bb", now=2.0) == 12
        assert log.head == 12
        assert [seq for seq, _, _ in log.since(10)] == [11, 12]
        assert [seq for seq, _, _ in log.since(11)] == [12]
        assert log.broadcast_time(12) == 2.0

    def test_skip_advances_head_without_retention(self):
        log = CommitLog()
        assert log.skip(now=1.0) == 1
        assert log.head == 1
        assert log.base == 1
        log.append("aa", now=2.0)
        with pytest.raises(ReplicationError):
            log.skip(now=3.0)  # a hole behind retained entries

    def test_truncation_bumps_base_and_refuses_stale_followers(self):
        log = CommitLog(cap_bytes=8)
        for i in range(4):
            log.append("x" * 4, now=float(i))
        assert log.truncations > 0
        assert log.base > 0
        with pytest.raises(ReplicationError, match="re-seed"):
            log.since(0)
        # The retained suffix still streams.
        assert log.since(log.base)


# ----------------------------------------------------------------------
# Live primary/replica pair
# ----------------------------------------------------------------------
def _wait_applied(port, commit, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServiceClient("127.0.0.1", port, timeout=2.0) as svc:
            repl = (svc.stats() or {}).get("replication") or {}
            if repl.get("applied", -1) >= commit:
                return repl
        time.sleep(0.02)
    raise AssertionError(f"replica :{port} never applied commit {commit}")


@pytest.fixture
def pair():
    primary_tree = ShardedTree("sum", num_shards=2, span=(0, 1000),
                               branching=4, leaf_capacity=4)
    replica_tree = ShardedTree("sum", num_shards=2, span=(0, 1000),
                               branching=4, leaf_capacity=4)
    primary = ServerHandle.start(primary_tree, batch_max=8,
                                 batch_delay=0.002, repl_ack_timeout=5.0)
    replica = ServerHandle.start(
        replica_tree, batch_max=8, batch_delay=0.002,
        replica_of=f"127.0.0.1:{primary.port}",
        replica_name="test-replica",
    )
    try:
        yield primary, replica
    finally:
        replica.stop()
        primary.stop()


class TestPrimaryReplicaPair:
    def test_stream_applies_and_reads_carry_watermark(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            for value, start, end in [(5, 10, 20), (3, 15, 30), (2, 0, 100)]:
                svc.insert(value, start, end)
            commit = svc.stats()["replication"]["commit"]
            want = svc.lookup(17)
        repl = _wait_applied(replica.port, commit)
        assert repl["role"] == "replica"
        assert repl["lag_commits"] == 0
        with ServiceClient("127.0.0.1", replica.port, timeout=5.0) as svc:
            assert svc.lookup(17) == want == 5 + 3 + 2
            assert svc.last_watermark == commit
            assert svc.last_staleness_s is not None
            assert svc.last_staleness_s >= 0.0

    def test_replica_rejects_writes_with_redirect(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", replica.port, timeout=5.0,
                           retries=0) as svc:
            with pytest.raises(ServiceError) as excinfo:
                svc.insert(1, 0, 10)
        assert excinfo.value.type == protocol.ERR_NOT_PRIMARY
        assert excinfo.value.primary == f"127.0.0.1:{primary.port}"

    def test_client_adopts_redirect_and_writes_land(self, pair):
        primary, replica = pair
        # Pointed at the replica, a retrying client follows the
        # redirect hint and the write lands on the primary.
        with ServiceClient("127.0.0.1", replica.port, timeout=5.0,
                           retries=2, jitter_seed=1) as svc:
            assert svc.insert(4, 0, 50) == 1
            assert svc.port == primary.port
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            assert svc.lookup(25) == 4

    def test_replica_aware_reads_route_to_replica(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            svc.insert(9, 100, 200)
            commit = svc.stats()["replication"]["commit"]
        _wait_applied(replica.port, commit)
        with ServiceClient(
            "127.0.0.1", primary.port, timeout=5.0,
            replicas=[f"127.0.0.1:{replica.port}"],
        ) as svc:
            assert svc.lookup(150) == 9
            assert svc.last_watermark == commit  # served by the replica
        # An unmeetable staleness bound sends the read to the primary
        # instead of returning an over-stale replica answer.
        with ServiceClient(
            "127.0.0.1", primary.port, timeout=5.0,
            replicas=[f"127.0.0.1:{replica.port}"],
            max_staleness_s=0.0,
        ) as svc:
            assert svc.lookup(150) == 9

    def test_primary_stats_track_replica_lag(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            svc.insert(1, 0, 10)
            repl = svc.stats()["replication"]
        assert repl["role"] == "primary"
        assert repl["sync"] is True
        names = [entry["name"] for entry in repl["replicas"]]
        assert "test-replica" in names

    def test_promotion_keeps_dedup_and_accepts_writes(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0,
                           client_id="failover-probe") as svc:
            first = svc.insert_result(7, 300, 310, seq=1)
            assert not first.get("duplicate")
            commit = svc.stats()["replication"]["commit"]
        _wait_applied(replica.port, commit)

        primary.stop()  # the primary "dies"
        with ServiceClient("127.0.0.1", replica.port, timeout=5.0) as svc:
            reply = svc._request("promote")
            assert reply["promoted"] is True
            assert reply["role"] == "primary"
            assert svc.stats()["replication"]["promoted"] is True
        # The pre-failover idempotency key replays as a duplicate, and
        # new writes land on the promoted server.
        with ServiceClient("127.0.0.1", replica.port, timeout=5.0,
                           client_id="failover-probe") as svc:
            replay = svc.insert_result(7, 300, 310, seq=1)
            assert replay["duplicate"] is True
            # distinct seq: the auto-counter would collide with the
            # replayed seq=1 under this client id and dedup the write
            assert svc.insert(2, 300, 310, seq=2) == 1
            assert svc.lookup(305) == 9

    def test_promoting_a_primary_is_a_noop(self, pair):
        primary, _ = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            reply = svc._request("promote")
        assert reply["promoted"] is False
        assert reply["role"] == "primary"


# ----------------------------------------------------------------------
# Reporting surfaces
# ----------------------------------------------------------------------
class TestReplicationReporting:
    def test_top_renders_primary_panel(self):
        stats = {
            "kind": "sum",
            "replication": {
                "role": "primary",
                "commit": 42,
                "sync": True,
                "promoted": False,
                "replicas": [
                    {"name": "r1", "acked": 40, "lag_commits": 2,
                     "lag_s": 0.5, "connected": True},
                    {"name": "r2", "acked": 10, "lag_commits": 32,
                     "lag_s": 9.0, "connected": False},
                ],
            },
        }
        frame = render_top(stats)
        assert "replication:" in frame
        assert "primary at commit 42" in frame
        assert "semi-sync" in frame
        assert "r1" in frame and "up" in frame
        assert "r2" in frame and "DOWN" in frame

    def test_top_renders_replica_panel(self):
        stats = {
            "kind": "sum",
            "replication": {
                "role": "replica",
                "primary": "127.0.0.1:7071",
                "applied": 40,
                "head": 42,
                "lag_commits": 2,
                "staleness_s": 0.25,
                "connected": True,
            },
        }
        frame = render_top(stats)
        assert "replica of 127.0.0.1:7071" in frame
        assert "lag 2 commits" in frame
        assert "staleness 0.25s" in frame

    def test_top_omits_panel_for_standalone_primary(self):
        assert "replication:" not in render_top({"kind": "sum"})

    def test_failed_rescheck_prints_repro_line_and_logs(self):
        result = RescheckResult()
        result.ok = False
        result.seed = 13
        result.codec = "binary"
        result.replicas = 1
        result.detail = "boom"
        result.plan = ChaosPlan(drop=0.01, delay=0.1, duplicate=0.2,
                                truncate=0.005, kill=0.002)
        result.log_paths = ["/tmp/x/primary.log", "/tmp/x/replica0.log"]
        text = result.render()
        assert "repro: --seed 13 --codec binary" in text
        assert "--drop 0.01" in text
        assert "--replicas 1" in text
        assert "server logs:" in text
        assert "/tmp/x/replica0.log" in text

    def test_green_rescheck_omits_repro_block(self):
        result = RescheckResult()
        result.ok = True
        result.log_paths = ["/tmp/x/primary.log"]
        assert "repro:" not in result.render()
