"""Tests for the concurrency layer: the RW lock and the tree wrapper."""

import threading
import time

import pytest

from repro import Interval, SBTree, check_tree
from repro.concurrent import ConcurrentTree, LockTimeout, ReadWriteLock
from repro.core import reference


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers inside together

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                release_writer.wait(timeout=5)
                order.append("writer-done")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read_locked():
                order.append("reader")

        wt = threading.Thread(target=writer)
        rt = threading.Thread(target=reader)
        wt.start()
        rt.start()
        time.sleep(0.05)  # give the reader a chance to (wrongly) slip in
        release_writer.set()
        wt.join(timeout=5)
        rt.join(timeout=5)
        assert order == ["writer-done", "reader"]

    def test_writers_mutually_exclusive(self):
        lock = ReadWriteLock()
        counter = {"value": 0, "max_concurrent": 0, "current": 0}
        guard = threading.Lock()

        def writer():
            for _ in range(200):
                with lock.write_locked():
                    with guard:
                        counter["current"] += 1
                        counter["max_concurrent"] = max(
                            counter["max_concurrent"], counter["current"]
                        )
                    counter["value"] += 1
                    with guard:
                        counter["current"] -= 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert counter["value"] == 800
        assert counter["max_concurrent"] == 1

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        events = []
        reader_in = threading.Event()
        release_first_reader = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                release_first_reader.wait(timeout=5)

        def writer():
            reader_in.wait(timeout=5)
            with lock.write_locked():
                events.append("writer")

        def late_reader():
            time.sleep(0.05)  # arrive after the writer is queued
            with lock.read_locked():
                events.append("late-reader")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)
        release_first_reader.set()
        for t in threads:
            t.join(timeout=5)
        # Writer preference: the queued writer goes before the late reader.
        assert events == ["writer", "late-reader"]


class TestLockTimeouts:
    """The ``timeout=`` parameter on acquire_read/acquire_write."""

    def _hold_write(self, lock):
        """Acquire the write lock on a thread and return a release event."""
        held = threading.Event()
        release = threading.Event()

        def holder():
            with lock.write_locked():
                held.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert held.wait(timeout=5)
        return release, thread

    def test_read_timeout_expires(self):
        lock = ReadWriteLock()
        release, thread = self._hold_write(lock)
        started = time.monotonic()
        assert lock.acquire_read(timeout=0.05) is False
        assert time.monotonic() - started < 2.0
        release.set()
        thread.join(timeout=5)
        # And without contention the same call succeeds immediately.
        assert lock.acquire_read(timeout=0.05) is True
        lock.release_read()

    def test_write_timeout_expires(self):
        lock = ReadWriteLock()
        release, thread = self._hold_write(lock)
        assert lock.acquire_write(timeout=0.05) is False
        release.set()
        thread.join(timeout=5)
        assert lock.acquire_write(timeout=0.05) is True
        lock.release_write()

    def test_guard_raises_lock_timeout(self):
        lock = ReadWriteLock()
        release, thread = self._hold_write(lock)
        with pytest.raises(LockTimeout):
            with lock.read_locked(timeout=0.05):
                pass
        with pytest.raises(LockTimeout):
            with lock.write_locked(timeout=0.05):
                pass
        release.set()
        thread.join(timeout=5)
        # The failed acquires left no residue: both modes still work.
        with lock.write_locked(timeout=1.0):
            pass
        with lock.read_locked(timeout=1.0):
            pass

    def test_timed_out_writer_wakes_readers(self):
        """Regression: a writer that gives up must stop blocking readers.

        While a writer waits, ``_waiting_writers`` holds new readers out
        (writer preference).  If the writer times out as the *last*
        waiting writer, it has to wake the reader queue -- otherwise
        readers blocked on its account stall until the next unrelated
        release.
        """
        lock = ReadWriteLock()
        reader_in = threading.Event()
        release_reader = threading.Event()

        def long_reader():
            with lock.read_locked():
                reader_in.set()
                release_reader.wait(timeout=10)

        holder = threading.Thread(target=long_reader, daemon=True)
        holder.start()
        assert reader_in.wait(timeout=5)

        # A writer queues behind the active reader and times out.
        assert lock.acquire_write(timeout=0.05) is False

        # A late reader must now get in *without* the long reader
        # releasing anything (the timed-out writer is gone).
        got_in = threading.Event()

        def late_reader():
            if lock.acquire_read(timeout=1.0):
                got_in.set()
                lock.release_read()

        late = threading.Thread(target=late_reader, daemon=True)
        late.start()
        late.join(timeout=5)
        assert got_in.is_set(), "reader stalled behind a timed-out writer"
        release_reader.set()
        holder.join(timeout=5)

    def test_writer_preference_survives_timeouts(self):
        """Under reader/writer churn with timeouts in the mix, queued
        writers still run before late readers and no thread stalls."""
        lock = ReadWriteLock()
        events = []
        guard = threading.Lock()
        reader_in = threading.Event()
        release_first = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                release_first.wait(timeout=10)

        def patient_writer():
            reader_in.wait(timeout=5)
            with lock.write_locked(timeout=5.0):
                with guard:
                    events.append("writer")

        def impatient_writer():
            reader_in.wait(timeout=5)
            # Gives up long before the first reader releases.
            if lock.acquire_write(timeout=0.01):  # pragma: no cover
                lock.release_write()

        def late_reader():
            reader_in.wait(timeout=5)
            time.sleep(0.05)  # arrive after the writers are queued
            with lock.read_locked(timeout=5.0):
                with guard:
                    events.append("late-reader")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=patient_writer),
            threading.Thread(target=impatient_writer),
            threading.Thread(target=late_reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)
        release_first.set()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        # Writer preference: the patient writer beat the late reader.
        assert events == ["writer", "late-reader"]

    def test_concurrent_tree_timeout_plumbing(self):
        """ConcurrentTree(read_timeout=...) surfaces LockTimeout."""
        tree = ConcurrentTree(
            SBTree("sum", branching=4, leaf_capacity=4), read_timeout=0.05
        )
        tree.insert(2, Interval(10, 40))
        assert tree.lookup(19) == 2  # uncontended reads are unaffected

        blocked = threading.Event()
        release = threading.Event()

        def writer():
            with tree.lock.write_locked():
                blocked.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert blocked.wait(timeout=5)
        with pytest.raises(LockTimeout):
            tree.lookup(19)
        release.set()
        thread.join(timeout=5)
        assert tree.lookup(19) == 2


class TestConcurrentTree:
    def test_passthrough_attributes(self):
        wrapped = ConcurrentTree(SBTree("sum", branching=4, leaf_capacity=4))
        assert wrapped.kind.value == "sum"
        assert wrapped.height == 1

    def test_stress_writers_and_readers(self):
        """Interleaved threads; the final tree equals the oracle and
        every concurrent read observed a structurally sane value."""
        tree = ConcurrentTree(SBTree("count", branching=4, leaf_capacity=4))
        n_writers, per_writer = 4, 60
        all_facts = [
            [
                (1, Interval(w * 1000 + i * 7, w * 1000 + i * 7 + 30))
                for i in range(per_writer)
            ]
            for w in range(n_writers)
        ]
        stop_reading = threading.Event()
        read_errors = []

        def writer(facts):
            for value, interval in facts:
                tree.insert(value, interval)

        def reader():
            while not stop_reading.is_set():
                value = tree.lookup(1500)
                if not isinstance(value, int) or value < 0:
                    read_errors.append(value)
                tree.range_query(Interval(0, 4000))

        writers = [threading.Thread(target=writer, args=(f,)) for f in all_facts]
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=30)
        stop_reading.set()
        for t in readers:
            t.join(timeout=30)

        assert not read_errors
        flat = [fact for facts in all_facts for fact in facts]
        assert tree.to_table() == reference.instantaneous_table(flat, "count")
        check_tree(tree.tree)

    def test_stress_mixed_insert_delete(self):
        tree = ConcurrentTree(SBTree("sum", branching=4, leaf_capacity=4))
        barrier = threading.Barrier(3, timeout=10)

        def churn(offset):
            barrier.wait()
            for i in range(80):
                interval = Interval(offset + i * 3, offset + i * 3 + 40)
                tree.insert(2, interval)
                tree.delete(2, interval)

        threads = [threading.Thread(target=churn, args=(k * 500,)) for k in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # Everything inserted was deleted: the tree must be empty again.
        assert tree.to_table().rows == []
        assert tree.tree.node_count() == 1

    def test_window_lookup_under_lock(self):
        from repro import MSBTree

        msb = ConcurrentTree(MSBTree("max", branching=4, leaf_capacity=4))
        msb.insert(5, Interval(0, 10))
        assert msb.window_lookup(15, 10) == 5

    def test_concurrent_access_to_paged_store(self, tmp_path):
        """The wrapper serializes all access, so even the (unsynchronized)
        paged store is safe behind it."""
        from repro.storage import PagedNodeStore

        with PagedNodeStore(str(tmp_path / "c.sbt"), "count", buffer_capacity=8) as store:
            tree = ConcurrentTree(SBTree("count", store, branching=6, leaf_capacity=6))
            barrier = threading.Barrier(4, timeout=10)

            def work(offset):
                barrier.wait()
                for i in range(50):
                    tree.insert(1, Interval(offset + i * 2, offset + i * 2 + 9))
                    tree.lookup(offset + i)

            threads = [threading.Thread(target=work, args=(k * 200,)) for k in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert tree.lookup(1) in range(0, 10)  # sane value
            check_tree(tree.tree)
            facts = []
            for k in range(4):
                facts += [
                    (1, Interval(k * 200 + i * 2, k * 200 + i * 2 + 9))
                    for i in range(50)
                ]
            assert tree.to_table() == reference.instantaneous_table(facts, "count")

    def test_shared_lock_across_trees(self):
        """A dual-tree pair can share one lock for atomic updates."""
        from repro import DualTreeAggregate

        lock = ReadWriteLock()
        dual = ConcurrentTree(DualTreeAggregate("sum", branching=4, leaf_capacity=4), lock)
        dual.insert(3, Interval(0, 10))
        assert dual.window_lookup(12, 5) == 3


class TestWrapperProtocols:
    """Regression: ``__getattr__`` used to recurse infinitely when
    copy/pickle probed dunders on a blank instance (before ``__init__``
    had bound ``self.tree``)."""

    def make(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(2, Interval(10, 40))
        return ConcurrentTree(tree)

    def test_copy_copy_works(self):
        import copy

        wrapped = self.make()
        clone = copy.copy(wrapped)
        # A shallow copy shares the underlying tree and stays usable.
        assert clone.tree is wrapped.tree
        assert clone.lookup(19) == 2

    def test_missing_attribute_raises_cleanly(self):
        wrapped = self.make()
        with pytest.raises(AttributeError):
            wrapped.no_such_method
        assert not hasattr(wrapped, "definitely_not_there")

    def test_dunder_probe_on_blank_instance(self):
        # What copy.copy does internally: probe dunders on an instance
        # created without running __init__.  Must raise AttributeError,
        # not RecursionError.
        blank = ConcurrentTree.__new__(ConcurrentTree)
        with pytest.raises(AttributeError):
            blank.__deepcopy__
        with pytest.raises(AttributeError):
            blank.anything  # no self.tree yet either

    def test_delegation_still_works(self):
        wrapped = self.make()
        # Non-dunder attributes still delegate to the wrapped tree.
        assert wrapped.height == wrapped.tree.height
        assert wrapped.kind is wrapped.tree.kind
