"""Differential fuzzing: every structure answers every query identically.

One random workload is replayed into *all* computation routes at once --
the SB-tree (memory and disk), the MSB-tree, the dual-tree pair, the
fixed-window trees, the directly materialized view, every one-shot
baseline and the brute-force oracle -- and their answers are compared
pairwise at many instants, windows and ranges.  Any divergence anywhere
in the stack fails loudly with the seed that produced it.
"""

import random

import pytest

from repro import (
    DualTreeAggregate,
    FixedWindowTree,
    Interval,
    MSBTree,
    SBTree,
    check_tree,
)
from repro.baselines import (
    aggregation_tree,
    balanced_tree,
    bucket,
    endpoint_sort,
    merge_sort,
    naive,
)
from repro.core import reference
from repro.storage import PagedNodeStore
from repro.warehouse import MaterializedView


def make_workload(seed, n=120):
    rng = random.Random(seed)
    facts = []
    for _ in range(n):
        start = rng.randrange(0, 600)
        length = rng.choice([1, 3, 10, 50, 400])
        facts.append((rng.randint(-5, 9), Interval(start, start + length)))
    return facts


@pytest.mark.parametrize("seed", range(6))
def test_instantaneous_sum_everywhere(seed, tmp_path):
    facts = make_workload(seed)
    oracle = reference.instantaneous_table(facts, "sum")

    routes = {}
    tree = SBTree("sum", branching=5, leaf_capacity=7)
    for value, interval in facts:
        tree.insert(value, interval)
    routes["sbtree"] = tree.to_table()

    with PagedNodeStore(
        str(tmp_path / f"d{seed}.sbt"), "sum", page_size=1024, buffer_capacity=6
    ) as store:
        disk = SBTree("sum", store, branching=6, leaf_capacity=6)
        for value, interval in facts:
            disk.insert(value, interval)
        routes["disk"] = disk.to_table()

    view = MaterializedView("sum")
    for value, interval in facts:
        view.insert(value, interval)
    routes["materialized"] = view.to_table()

    routes["naive"] = naive.compute(facts, "sum")
    routes["endpoint"] = endpoint_sort.compute(facts, "sum")
    routes["balanced"] = balanced_tree.compute(facts, "sum")
    routes["aggr_tree"] = aggregation_tree.compute(facts, "sum")
    routes["bucket"] = bucket.compute(facts, "sum", num_buckets=7)
    routes["merge_sort"] = merge_sort.compute(facts, "sum")

    for name, table in routes.items():
        assert table == oracle, f"route {name!r} diverged (seed={seed})"
    check_tree(tree)


@pytest.mark.parametrize("seed", range(6))
def test_cumulative_sum_everywhere(seed):
    facts = make_workload(seed, n=80)
    dual = DualTreeAggregate("sum", branching=5, leaf_capacity=5)
    fixed = {w: FixedWindowTree("sum", window=w, branching=5, leaf_capacity=5)
             for w in (0, 7, 100)}
    for value, interval in facts:
        dual.insert(value, interval)
        for tree in fixed.values():
            tree.insert(value, interval)
    rng = random.Random(seed * 31 + 7)
    for _ in range(40):
        t = rng.randrange(-50, 1200)
        for w in (0, 7, 100):
            expected = reference.cumulative_value(facts, "sum", t, w)
            assert dual.window_lookup(t, w) == expected, (seed, t, w)
            assert fixed[w].lookup(t) == expected, (seed, t, w)


@pytest.mark.parametrize("seed", range(6))
def test_cumulative_max_everywhere(seed):
    facts = [(abs(v), i) for v, i in make_workload(seed, n=80)]
    msb = MSBTree("max", branching=5, leaf_capacity=5)
    fixed = {w: FixedWindowTree("max", window=w, branching=5, leaf_capacity=5)
             for w in (0, 7, 100)}
    for value, interval in facts:
        msb.insert(value, interval)
        for tree in fixed.values():
            tree.insert(value, interval)
    check_tree(msb)
    rng = random.Random(seed * 17 + 3)
    for _ in range(40):
        t = rng.randrange(-50, 1200)
        for w in (0, 7, 100):
            expected = reference.cumulative_value(facts, "max", t, w)
            assert msb.window_lookup(t, w) == expected, (seed, t, w)
            assert fixed[w].lookup(t) == expected, (seed, t, w)


@pytest.mark.parametrize("seed", range(4))
def test_delete_heavy_stream_everywhere(seed):
    rng = random.Random(seed + 100)
    tree = SBTree("avg", branching=5, leaf_capacity=5)
    dual = DualTreeAggregate("avg", branching=4, leaf_capacity=6)
    view = MaterializedView("avg")
    live = []
    for step in range(250):
        if live and rng.random() < 0.45:
            value, interval = live.pop(rng.randrange(len(live)))
            tree.delete(value, interval)
            dual.delete(value, interval)
            view.delete(value, interval)
        else:
            start = rng.randrange(0, 500)
            fact = (rng.randint(1, 9), Interval(start, start + rng.choice([2, 20, 200])))
            live.append(fact)
            tree.insert(*fact)
            dual.insert(*fact)
            view.insert(*fact)
        if step % 50 == 49:
            oracle = reference.instantaneous_table(live, "avg")
            assert tree.to_table() == oracle, seed
            assert view.to_table() == oracle, seed
            assert dual.current.to_table() == oracle, seed
            check_tree(tree)


@pytest.mark.parametrize("seed", range(4))
def test_range_queries_everywhere(seed):
    facts = make_workload(seed)
    tree = SBTree("count", branching=5, leaf_capacity=5)
    view = MaterializedView("count")
    for value, interval in facts:
        tree.insert(1, interval)
        view.insert(1, interval)
    oracle = reference.instantaneous_table(
        [(1, i) for _, i in facts], "count", drop_initial=False
    )
    rng = random.Random(seed)
    for _ in range(25):
        lo = rng.randrange(-20, 1000)
        window = Interval(lo, lo + rng.randrange(1, 300))
        want = oracle.restrict(window).coalesce()
        assert tree.range_query(window).coalesce(tree.spec.eq) == want
