"""Unit tests for the MSB-tree's u-annotation machinery (Section 4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Interval, MSBTree, SBTree, check_tree
from repro.core import reference
from repro.core.validate import TreeInvariantError

times = st.integers(min_value=0, max_value=100)
values = st.integers(min_value=-9, max_value=9)


@st.composite
def intervals(draw):
    start = draw(times)
    return Interval(start, start + draw(st.integers(min_value=1, max_value=50)))


facts_lists = st.lists(st.tuples(values, intervals()), min_size=0, max_size=25)


class TestConstruction:
    def test_only_min_max(self):
        for kind in ("sum", "count", "avg"):
            with pytest.raises(ValueError):
                MSBTree(kind)

    def test_interior_nodes_get_uvalues(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for i in range(30):
            msb.insert(i % 5, Interval(i * 2, i * 2 + 3))
        root = msb.store.read(msb.store.get_root())
        assert not root.is_leaf
        assert root.uvalues is not None
        assert len(root.uvalues) == root.interval_count

    def test_leaves_have_no_uvalues(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for i in range(30):
            msb.insert(i, Interval(i * 2, i * 2 + 3))
        root = msb.store.read(msb.store.get_root())
        leaf = msb.store.read(root.children[0])
        while not leaf.is_leaf:
            leaf = msb.store.read(leaf.children[0])
        assert leaf.uvalues is None

    def test_deletes_rejected(self):
        msb = MSBTree("max")
        with pytest.raises(ValueError):
            msb.delete(3, Interval(0, 10))


class TestUExactness:
    """The u invariant: acc(v_i, u_i) equals the true subtree extremum.

    ``check_tree`` audits this structurally; here we additionally verify
    the derived property the paper uses: a window fully covering an
    interior interval is answered exactly from the annotations.
    """

    @pytest.mark.parametrize("kind", ["min", "max"])
    @given(facts=facts_lists)
    @settings(max_examples=60, deadline=None)
    def test_u_invariant_under_random_inserts(self, kind, facts):
        msb = MSBTree(kind, branching=4, leaf_capacity=4)
        for value, interval in facts:
            msb.insert(value, interval)
        check_tree(msb)  # includes the u-annotation audit

    def test_u_invariant_detects_corruption(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for i in range(40):
            msb.insert(i, Interval(i, i + 10))
        root = msb.store.read(msb.store.get_root())
        root.uvalues[0] = 999  # corrupt an annotation
        msb.store.write(root)
        with pytest.raises(TreeInvariantError):
            check_tree(msb)

    def test_covered_interval_answered_from_annotations(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        # Decreasing values: new inserts still build structure (they beat
        # the empty NULL), and the global maximum lives on the left, so
        # intervals right of the window prune without descent.
        facts = [(1000 - i, Interval(i * 3, i * 3 + 9)) for i in range(80)]
        for value, interval in facts:
            msb.insert(value, interval)
        root = msb.store.read(msb.store.get_root())
        assert len(root.times) >= 2, "precondition: root holds >= 3 intervals"
        # Closed window [t1, t2] covers the root's second interval
        # [t1, t2) entirely: answered from (u, v), no descent; later
        # intervals carry smaller maxima and prune.
        lo, hi = root.times[0], root.times[1]
        before = msb.store.stats.snapshot()
        got = msb.window_lookup(hi, hi - lo)
        reads = (msb.store.stats - before).reads
        assert got == reference.cumulative_value(facts, "max", hi, hi - lo)
        assert reads == 1


class TestPruning:
    def test_minsert_prunes_dominated_effects(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        msb.insert(100, Interval(0, 1000))
        nodes_before = msb.node_count()
        # Dominated inserts must create no structure at all.
        for i in range(50):
            msb.insert(1, Interval(i * 10, i * 10 + 500))
        assert msb.node_count() == nodes_before

    def test_mlookup_prunes_unpromising_subtrees(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        # A tall spike at the left, low noise to the right.
        msb.insert(1000, Interval(0, 10))
        for i in range(100):
            msb.insert(i % 5, Interval(10 + i * 4, 10 + i * 4 + 6))
        before = msb.store.stats.snapshot()
        got = msb.window_lookup(500, 500)  # window covers everything
        reads = (msb.store.stats - before).reads
        assert got == 1000
        # Once the spike is in hand, the noisy right side is skipped;
        # far fewer reads than a full scan of ~50 nodes.
        assert reads <= msb.height + 2


class TestWindowQueries:
    @given(facts=facts_lists, w=st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_window_query_matches_oracle_everywhere(self, facts, w):
        msb = MSBTree("min", branching=4, leaf_capacity=4)
        for value, interval in facts:
            msb.insert(value, interval)
        table = msb.window_query(Interval(-10, 170), w)
        for t in range(-10, 170, 3):
            assert table.value_at(t) == reference.cumulative_value(
                facts, "min", t, w
            ), f"t={t} w={w}"

    def test_window_zero_equals_instantaneous(self):
        facts = [(3, Interval(0, 10)), (7, Interval(5, 20)), (1, Interval(15, 30))]
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for value, interval in facts:
            msb.insert(value, interval)
        for t in range(0, 35):
            assert msb.window_lookup(t, 0) == msb.lookup(t)

    def test_negative_offset_rejected(self):
        msb = MSBTree("max")
        with pytest.raises(ValueError):
            msb.window_lookup(10, -1)

    def test_instantaneous_queries_still_work(self):
        """An MSB-tree is also a plain SB-tree for its aggregate."""
        facts = [(i % 9, Interval(i, i + 12)) for i in range(60)]
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        sb = SBTree("max", branching=4, leaf_capacity=4)
        for value, interval in facts:
            msb.insert(value, interval)
            sb.insert(value, interval)
        assert msb.to_table() == sb.to_table()
        for t in range(0, 80, 5):
            assert msb.lookup(t) == sb.lookup(t)


class TestSplitsPreserveU:
    def test_deep_tree_annotations_after_many_splits(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        facts = []
        for i in range(300):
            fact = (i % 13, Interval(i * 2, i * 2 + 5))
            facts.append(fact)
            msb.insert(*fact)
        assert msb.height >= 4  # several levels of u-annotated interiors
        check_tree(msb)
        for t in range(0, 650, 17):
            for w in (0, 10, 100):
                assert msb.window_lookup(t, w) == reference.cumulative_value(
                    facts, "max", t, w
                )

    def test_grow_root_initializes_u(self):
        msb = MSBTree("min", branching=4, leaf_capacity=4)
        for i in range(10):
            msb.insert(10 - i, Interval(i * 5, i * 5 + 7))
        root = msb.store.read(msb.store.get_root())
        if not root.is_leaf:
            assert root.uvalues is not None
        check_tree(msb)
