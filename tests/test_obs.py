"""Tests for the per-operation observability layer (:mod:`repro.obs`)."""

import io
import json

import pytest

from repro import ConcurrentTree, Interval, MSBTree, SBTree, obs
from repro.relation import TemporalRelation
from repro.storage import PagedNodeStore
from repro.warehouse import TemporalWarehouse
from repro.workloads import uniform

FACTS = uniform(400, horizon=10_000, max_duration=200, seed=29)


def paged_tree(path, buffer_capacity=64):
    store = PagedNodeStore(str(path), "sum", buffer_capacity=buffer_capacity)
    tree = SBTree(
        "sum",
        store,
        branching=min(16, store.default_branching),
        leaf_capacity=min(16, store.default_leaf_capacity),
    )
    return store, tree


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc(self):
        counter = obs.Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestHistogram:
    def test_bucket_assignment_and_moments(self):
        h = obs.Histogram("lat", bounds=[10, 20, 50])
        for v in (1, 10, 11, 19, 100):
            h.record(v)
        assert h.count == 5
        assert h.total == 141
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(141 / 5)
        # <=10: {1, 10}; <=20: {11, 19}; <=50: {}; inf: {100}
        assert h.counts == [2, 2, 0, 1]

    def test_quantiles_interpolate_within_buckets(self):
        h = obs.Histogram("lat", bounds=[10, 20, 50])
        for v in (1, 10, 11, 19, 100):
            h.record(v)
        # target = q * count; buckets hold {1,10} | {11,19} | {} | {100}
        assert h.quantile(0.4) == 10
        # The 3rd sample lands in (10, 20]: half of that bucket's mass,
        # so the estimate is the bucket midpoint -- not its upper edge.
        assert h.quantile(0.5) == pytest.approx(12.5)
        assert h.quantile(0.8) == 20
        # The overflow bucket is clamped to the observed max.
        assert h.quantile(1.0) == 100

    def test_quantile_clamps_to_observed_range(self):
        h = obs.Histogram("lat", bounds=[10, 20, 50])
        h.record(42)
        # One sample in (20, 50]: every quantile is that sample's
        # bucket, clamped between observed min and max.
        for q in (0.1, 0.5, 1.0):
            assert 20 < h.quantile(q) <= 42

    def test_to_dict_exposes_bucket_bounds(self):
        h = obs.Histogram("lat", bounds=[10, 20])
        h.record(5)
        h.record(1000)
        d = h.to_dict()
        assert d["bounds"] == [10, 20, "inf"]
        assert d["buckets"] == {10: 1, "inf": 1}

    def test_empty_histogram(self):
        h = obs.Histogram("lat")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            obs.Histogram("bad", bounds=[10, 10, 20])
        with pytest.raises(ValueError):
            obs.Histogram("lat").quantile(1.5)

    def test_default_bounds_cover_microseconds_to_seconds(self):
        h = obs.Histogram("lat")
        assert h.bounds[0] == 1
        assert h.bounds[-1] == float("inf")
        assert 5_000_000 in h.bounds  # 5s in us


class TestMetricsRegistry:
    def test_record_op_folds_counters_and_histograms(self):
        registry = obs.MetricsRegistry()
        registry.record_op(
            obs.OpRecord(op="lookup", wall_us=12.0, reads=3, hits=2, misses=1)
        )
        registry.record_op(
            obs.OpRecord(op="lookup", wall_us=18.0, reads=3, hits=3)
        )
        assert registry.op_names() == ["lookup"]
        summary = registry.op_summary("lookup")
        assert summary["count"] == 2
        assert summary["reads"] == 6
        assert summary["reads_per_op"] == 3.0
        assert summary["hits"] == 5
        assert summary["misses"] == 1
        assert summary["wall_us"]["count"] == 2
        assert summary["wall_us"]["mean"] == pytest.approx(15.0)

    def test_unknown_op_summary_is_zeroed(self):
        registry = obs.MetricsRegistry()
        summary = registry.op_summary("nope")
        assert summary["count"] == 0
        assert summary["reads_per_op"] == 0.0

    def test_render_and_reset(self):
        registry = obs.MetricsRegistry()
        assert registry.render() == "no operations recorded"
        registry.record_op(obs.OpRecord(op="insert", wall_us=5.0, writes=2))
        assert "insert" in registry.render()
        registry.reset()
        assert registry.op_names() == []


# ----------------------------------------------------------------------
# Per-op I/O attribution on a paged tree
# ----------------------------------------------------------------------
class TestPerOpAccounting:
    def test_cold_lookup_reads_exactly_height_pages(self, tmp_path):
        path = tmp_path / "t.sbt"
        store, tree = paged_tree(path)
        for value, interval in FACTS:
            tree.insert(value, interval)
        height = tree.height
        assert height >= 2
        store.close()

        # Reopen: the buffer pool is cold, so one lookup must fault in
        # exactly the root-to-leaf path -- h logical reads, h misses,
        # h physical page reads (the paper's O(h) lookup cost).
        store = PagedNodeStore(str(path))
        tree = SBTree("sum", store)
        with obs.collecting() as registry:
            tree.lookup(5000)
            summary = registry.op_summary("lookup")
            assert summary["count"] == 1
            assert summary["reads"] == height
            assert summary["misses"] == height
            assert summary["physical_reads"] == height
            assert summary["hits"] == 0

            # Warm repeat: all hits, no physical I/O.
            tree.lookup(5000)
            summary = registry.op_summary("lookup")
            assert summary["count"] == 2
            assert summary["physical_reads"] == height  # unchanged
            assert summary["hits"] == height
        store.close()

    def test_insert_records_writes(self, tmp_path):
        store, tree = paged_tree(tmp_path / "t.sbt")
        with obs.collecting() as registry:
            tree.insert(1, Interval(10, 50))
            summary = registry.op_summary("insert")
            assert summary["count"] == 1
            assert summary["writes"] >= 1
        store.close()

    def test_compact_does_not_double_count_inner_ops(self, tmp_path):
        store, tree = paged_tree(tmp_path / "t.sbt")
        for value, interval in FACTS[:100]:
            tree.insert(value, interval)
        with obs.collecting() as registry:
            tree.compact()
            # compact() runs a whole-tree range query and a bulk load
            # internally; only the outermost op may be published.
            assert registry.op_summary("compact")["count"] == 1
            assert registry.op_summary("range_query")["count"] == 0
            assert registry.op_summary("bulk_load")["count"] == 0
        store.close()

    def test_memory_trees_record_logical_io_only(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for value, interval in FACTS[:50]:
            tree.insert(value, interval)
        with obs.collecting() as registry:
            tree.lookup(5000)
            summary = registry.op_summary("lookup")
            assert summary["count"] == 1
            assert summary["reads"] == tree.height
            assert summary["physical_reads"] == 0
            assert summary["misses"] == 0

    def test_msb_tree_window_ops(self):
        tree = MSBTree("max", branching=4, leaf_capacity=4)
        tree.insert(5, Interval(0, 10))
        tree.insert(9, Interval(5, 25))
        with obs.collecting() as registry:
            assert tree.window_lookup(30, 25) == 9
            assert registry.op_summary("mlookup")["count"] == 1


# ----------------------------------------------------------------------
# Concurrency: lock-wait attribution, no double counting
# ----------------------------------------------------------------------
class TestConcurrentAccounting:
    def test_lock_wait_recorded_once_per_op(self):
        tree = ConcurrentTree(SBTree("sum", branching=4, leaf_capacity=4))
        tree.insert(2, Interval(0, 100))
        with obs.collecting() as registry:
            assert tree.lookup(50) == 2
            summary = registry.op_summary("lookup")
            # One op, not two: the wrapper suppresses the inner tree op.
            assert summary["count"] == 1
            assert summary["lock_wait_us"]["count"] == 1
            assert summary["lock_wait_us"]["min"] >= 0.0


# ----------------------------------------------------------------------
# Warehouse: per-view maintenance cost
# ----------------------------------------------------------------------
class TestViewMaintenanceAccounting:
    def test_view_maintenance_ops_are_named_per_view(self):
        warehouse = TemporalWarehouse()
        rel = warehouse.create_table("r")
        warehouse.create_view("SumV", "r", "sum")
        with obs.collecting() as registry:
            rel.insert(3, Interval(0, 10))
            rel.insert(4, Interval(5, 20))
            assert registry.op_summary("view.SumV.maintain")["count"] == 2
            # The inner SB-tree insert is attributed to the view op only.
            assert registry.op_summary("insert")["count"] == 0
            per_view = warehouse.maintenance_summary()
        assert set(per_view) == {"SumV"}
        assert per_view["SumV"]["count"] == 2

    def test_maintenance_summary_empty_when_disabled(self):
        warehouse = TemporalWarehouse()
        rel = warehouse.create_table("r")
        warehouse.create_view("SumV", "r", "sum")
        rel.insert(3, Interval(0, 10))
        assert warehouse.maintenance_summary() == {}


# ----------------------------------------------------------------------
# Trace sink
# ----------------------------------------------------------------------
class TestTraceSink:
    def test_json_lines_schema(self):
        buf = io.StringIO()
        sink = obs.TraceSink(buf)
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        with obs.collecting(sink=sink):
            tree.insert(1, Interval(0, 10))
            tree.lookup(5)
        lines = [line for line in buf.getvalue().splitlines() if line]
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            for key in (
                "op", "wall_us", "reads", "writes", "hits", "misses",
                "physical_reads", "physical_writes",
            ):
                assert key in record, key
            assert record["subject"] == "SBTree"
        assert [json.loads(line)["op"] for line in lines] == ["insert", "lookup"]

    def test_deterministic_sampling(self):
        buf = io.StringIO()
        sink = obs.TraceSink(buf, sample=0.3)
        for _ in range(100):
            sink.emit(obs.OpRecord(op="x"))
        assert sink.seen == 100
        assert sink.emitted == 30
        assert len(buf.getvalue().splitlines()) == 30

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            obs.TraceSink(io.StringIO(), sample=0.0)
        with pytest.raises(ValueError):
            obs.TraceSink(io.StringIO(), sample=1.5)

    def test_file_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.TraceSink(path) as sink:
            sink.emit(obs.OpRecord(op="x", wall_us=1.0))
        assert json.loads(path.read_text())["op"] == "x"


# ----------------------------------------------------------------------
# The global switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_disabled_records_nothing(self):
        registry = obs.MetricsRegistry()
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(1, Interval(0, 10))  # obs off: must not touch registry
        assert registry.op_names() == []

    def test_wrapped_functions_expose_raw_callable(self):
        # The fast path's baseline: the undecorated method is reachable,
        # so overhead benchmarks can time it directly.
        assert hasattr(SBTree.lookup, "__wrapped__")
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        tree.insert(2, Interval(0, 10))
        assert SBTree.lookup.__wrapped__(tree, 5) == tree.lookup(5)

    def test_collecting_restores_prior_state(self):
        assert not obs.is_enabled()
        with obs.collecting() as registry:
            assert obs.is_enabled()
            assert obs.get_registry() is registry
        assert not obs.is_enabled()

    def test_collecting_is_exception_safe(self):
        with pytest.raises(RuntimeError):
            with obs.collecting():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_enable_disable(self):
        registry = obs.enable(obs.MetricsRegistry())
        try:
            assert obs.is_enabled()
            tree = SBTree("sum", branching=4, leaf_capacity=4)
            tree.insert(1, Interval(0, 10))
            assert registry.op_summary("insert")["count"] == 1
        finally:
            obs.disable()
        assert not obs.is_enabled()
