"""Exact tree-shape golden tests for the paper's figures.

These tests pin the *physical* node structure -- stored times, values,
u-annotations, and the parent/child topology -- against the trees drawn
in the paper (Figures 9-17 and the snapshot sequences of Figures 24 and
25), all with b = l = 4 as the paper uses.  The implementation follows
the paper's procedures (split point ceil(n/2), endpoint imerge, sibling
preference) closely enough that every decodable figure matches
node-for-node.

A tree shape is flattened to a list of ``(depth, is_leaf, times,
values[, uvalues])`` tuples in DFS order.
"""

import pytest

from repro import Interval, MSBTree, SBTree
from repro.workloads import PRESCRIPTIONS


def shape(tree):
    out = []

    def walk(node_id, depth):
        node = tree.store.read(node_id)
        entry = [depth, node.is_leaf, tuple(node.times), tuple(node.values)]
        if node.uvalues is not None:
            entry.append(tuple(node.uvalues))
        out.append(tuple(entry))
        if not node.is_leaf:
            for child in node.children:
                walk(child, depth + 1)

    walk(tree.store.get_root(), 0)
    return out


def build_sum_tree():
    tree = SBTree("sum", branching=4, leaf_capacity=4)
    for p in PRESCRIPTIONS:
        tree.insert(p.dosage, p.valid)
    return tree


#: Figure 9: the SB-tree for SumDosage with b = l = 4.
FIGURE_9 = [
    (0, False, (15, 30, 45), (0, 1, 0, 0)),
    (1, True, (5, 10), (0, 2, 8)),   # N1
    (1, True, (20,), (5, 6)),        # N2
    (1, True, (35, 40), (4, 8, 5)),  # N3
    (1, True, (50,), (1, 0)),        # N4
]


class TestFigures9To11:
    def test_figure9_exact_shape(self):
        assert shape(build_sum_tree()) == FIGURE_9

    def test_figure10_after_ida_insert(self):
        # insert(N0, <1, [17, 47)>): N0.I3 = [30, 45) is fully covered so
        # only N0.v3 is incremented; N2 and N4 get leaf cuts at 17 and 47.
        tree = build_sum_tree()
        tree.insert(1, Interval(17, 47))
        assert shape(tree) == [
            (0, False, (15, 30, 45), (0, 1, 1, 0)),
            (1, True, (5, 10), (0, 2, 8)),
            (1, True, (17, 20), (5, 6, 7)),   # N2 of Figure 10
            (1, True, (35, 40), (4, 8, 5)),
            (1, True, (47, 50), (2, 1, 0)),   # N4 of Figure 10
        ]

    def test_figure11_delete_then_imerge_restores_figure9(self):
        # Figure 11 shows the tree right after the negative insertion,
        # with equal-valued adjacent intervals in N2 and N4; the paper
        # then merges them (Section 3.6), returning exactly Figure 9's
        # tree.  Our delete runs imerge as part of the update.
        tree = build_sum_tree()
        tree.insert(1, Interval(17, 47))
        tree.delete(1, Interval(17, 47))
        assert shape(tree) == FIGURE_9


class TestFigures12To14:
    def test_figure14_split_cascade(self):
        # insert(N0, <1, [7, 12)>) overflows N1 (Figure 12), splitting it
        # into N11/N12 (Figure 13); N0 then overflows and splits under a
        # new root N0' (Figure 14).
        tree = build_sum_tree()
        tree.insert(1, Interval(7, 12))
        assert shape(tree) == [
            (0, False, (30,), (0, 0)),            # N0'
            (1, False, (10, 15), (0, 0, 1)),      # N01
            (2, True, (5, 7), (0, 2, 3)),         # N11
            (2, True, (12,), (9, 8)),             # N12
            (2, True, (20,), (5, 6)),             # N2
            (1, False, (45,), (0, 0)),            # N02
            (2, True, (35, 40), (4, 8, 5)),       # N3
            (2, True, (50,), (1, 0)),             # N4
        ]


class TestFigures15To17:
    def test_figure17_merge_cascade(self):
        # Deleting the [7, 12) tuple (via a negative insertion, as in
        # Section 3.6's example) triggers imerge on N11 and N12; N12
        # becomes underfull and nmerge fuses it with its sibling N2 into
        # N2', also merging the corresponding intervals in N01.
        tree = build_sum_tree()
        tree.insert(1, Interval(7, 12))
        tree.insert(-1, Interval(7, 12))
        assert shape(tree) == [
            (0, False, (30,), (0, 0)),            # N0'
            (1, False, (10,), (0, 0)),            # N01 after interval merge
            (2, True, (5,), (0, 2)),              # N11
            (2, True, (15, 20), (8, 6, 7)),       # N2'
            (1, False, (45,), (0, 0)),            # N02
            (2, True, (35, 40), (4, 8, 5)),       # N3
            (2, True, (50,), (1, 0)),             # N4
        ]
        # The paper notes the result differs from Figure 9's tree but
        # encodes exactly the same aggregate.
        assert tree.to_table() == build_sum_tree().to_table()


class TestFigure24Snapshots:
    """The full insert-then-delete-in-reverse snapshot sequence."""

    INSERT_SNAPSHOTS = [
        # After inserting Amy <2, [10, 40)>:
        [(0, True, (10, 40), (0, 2, 0))],
        # After Ben <3, [10, 30)>:
        [(0, True, (10, 30, 40), (0, 5, 2, 0))],
        # After Coy <1, [20, 40)>: first split.
        [
            (0, False, (30,), (0, 0)),
            (1, True, (10, 20), (0, 5, 6)),
            (1, True, (40,), (3, 0)),
        ],
        # After Dan <2, [5, 15)>:
        [
            (0, False, (15, 30), (0, 0, 0)),
            (1, True, (5, 10), (0, 2, 7)),
            (1, True, (20,), (5, 6)),
            (1, True, (40,), (3, 0)),
        ],
        # After Eve <4, [35, 45)>:
        [
            (0, False, (15, 30), (0, 0, 0)),
            (1, True, (5, 10), (0, 2, 7)),
            (1, True, (20,), (5, 6)),
            (1, True, (35, 40, 45), (3, 7, 4, 0)),
        ],
        # After Fred <1, [10, 50)>: Figure 9.
        FIGURE_9,
    ]

    DELETE_SNAPSHOTS = [
        # After deleting Fred:
        [
            (0, False, (15, 30, 40), (0, 0, -1, 0)),
            (1, True, (5, 10), (0, 2, 7)),
            (1, True, (20,), (5, 6)),
            (1, True, (35,), (4, 8)),
            (1, True, (45,), (4, 0)),
        ],
        # After deleting Eve (back to the after-Dan shape):
        [
            (0, False, (15, 30), (0, 0, 0)),
            (1, True, (5, 10), (0, 2, 7)),
            (1, True, (20,), (5, 6)),
            (1, True, (40,), (3, 0)),
        ],
        # After deleting Dan:
        [
            (0, False, (20,), (0, 0)),
            (1, True, (10,), (0, 5)),
            (1, True, (30, 40), (6, 3, 0)),
        ],
        # After deleting Coy:
        [
            (0, False, (30,), (0, 0)),
            (1, True, (10,), (0, 5)),
            (1, True, (40,), (2, 0)),
        ],
        # After deleting Ben:
        [(0, True, (10, 40), (0, 2, 0))],
        # After deleting Amy: the empty SB-tree.
        [(0, True, (), (0,))],
    ]

    def test_insert_sequence(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        for p, expected in zip(PRESCRIPTIONS, self.INSERT_SNAPSHOTS):
            tree.insert(p.dosage, p.valid)
            assert shape(tree) == expected, f"after inserting {p.patient}"

    def test_delete_sequence(self):
        tree = build_sum_tree()
        for p, expected in zip(reversed(PRESCRIPTIONS), self.DELETE_SNAPSHOTS):
            tree.delete(p.dosage, p.valid)
            assert shape(tree) == expected, f"after deleting {p.patient}"

    def test_empty_tree_shape(self):
        tree = SBTree("sum", branching=4, leaf_capacity=4)
        assert shape(tree) == [(0, True, (), (0,))]


class TestFigure25MSBSnapshots:
    """The MSB-tree insertion sequence for cumulative MAX, plus mbmerge."""

    SNAPSHOTS = [
        # Amy <2, [10, 40)>:
        [(0, True, (10, 40), (None, 2, None))],
        # Ben <3, [10, 30)>:
        [(0, True, (10, 30, 40), (None, 3, 2, None))],
        # Coy <1, [20, 40)>: no visible change -- 1 never beats the
        # stored MAX values (the paper's Figure 25 shows the same tree).
        [(0, True, (10, 30, 40), (None, 3, 2, None))],
        # Dan <2, [5, 15)>: the first split; interior u-values appear.
        [
            (0, False, (30,), (None, None), (3, 2)),
            (1, True, (5, 10), (None, 2, 3)),
            (1, True, (40,), (2, None)),
        ],
        # Eve <4, [35, 45)>:
        [
            (0, False, (30,), (None, None), (3, 4)),
            (1, True, (5, 10), (None, 2, 3)),
            (1, True, (35, 40, 45), (2, 4, 4, None)),
        ],
        # Fred <1, [10, 50)>: matches Figure 22.
        [
            (0, False, (30, 45), (None, None, None), (3, 4, 1)),
            (1, True, (5, 10), (None, 2, 3)),
            (1, True, (35, 40), (2, 4, 4)),
            (1, True, (50,), (1, None)),
        ],
    ]

    def test_insert_sequence(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for p, expected in zip(PRESCRIPTIONS, self.SNAPSHOTS):
            msb.insert(p.dosage, p.valid)
            assert shape(msb) == expected, f"after inserting {p.patient}"

    def test_mbmerge_snapshot(self):
        # The last Figure 25 snapshot: adjacent equal MAX intervals
        # ([35,40) and [40,45), both 4) are merged by mbmerge.
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            msb.insert(p.dosage, p.valid)
        msb.mbmerge()
        assert shape(msb) == [
            (0, False, (30,), (None, None), (3, 4)),
            (1, True, (5, 10), (None, 2, 3)),
            (1, True, (35, 45, 50), (2, 4, 1, None)),
        ]

    def test_figure22_lookup_narrative(self):
        # Section 4.3's worked mlookup at t=50, w=20: the [30, 45)
        # interval is fully covered (u=4, no descent); [45, inf) cannot
        # beat 4 (u=1); answer 4 without visiting any leaf.
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            msb.insert(p.dosage, p.valid)
        before = msb.store.stats.snapshot()
        assert msb.window_lookup(50, 20) == 4
        reads = (msb.store.stats - before).reads
        assert reads == 1  # only the root was read


class TestFigure18And19:
    def test_figure19_avg_tree_contents(self):
        # The AvgDosage SB-tree: leaf pairs are (sum, count) values.
        tree = SBTree("avg", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
        got = shape(tree)
        # Leaf pairs hold the (sum, count) encodings from Figure 19.
        all_values = [v for _, is_leaf, _, values in got for v in values if is_leaf]
        for pair in [(2, 1), (8, 4), (5, 2), (1, 1)]:
            assert pair in all_values
        assert tree.lookup(32) == (4, 3)

    def test_figure18_fixed_window_tree(self):
        # The dedicated AvgDosage5 tree; lookup at 32 accumulates to
        # <7, 4> as worked in Section 4.1.
        from repro import FixedWindowTree

        tree = FixedWindowTree("avg", window=5, branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            tree.insert(p.dosage, p.valid)
        assert tree.lookup(32) == (7, 4)
        # Figure 18's leaf boundaries include 20, 45, 50, 55.
        boundaries = set()
        for _, is_leaf, times, _ in shape(tree.tree):
            boundaries.update(times)
        assert {20, 45, 50, 55} <= boundaries
