"""Moderate-scale soak tests: tens of thousands of tuples.

These stay within a few seconds each but exercise genuinely deep trees,
large page files and long maintenance streams -- the regime the paper's
warehouse argument targets.
"""

import random

import pytest

from repro import DualTreeAggregate, Interval, MSBTree, SBTree, check_tree
from repro.core import reference
from repro.storage import PagedNodeStore
from repro.workloads import uniform

N = 30_000
HORIZON = 1_000_000
FACTS = uniform(N, horizon=HORIZON, max_duration=5_000, seed=123)


@pytest.fixture(scope="module")
def big_tree():
    tree = SBTree("sum", branching=64, leaf_capacity=64)
    for value, interval in FACTS:
        tree.insert(value, interval)
    return tree


class TestScale:
    def test_structure_at_scale(self, big_tree):
        check_tree(big_tree)
        assert big_tree.height <= 4  # log_32(~60k boundaries)

    def test_sampled_lookups_match_oracle(self, big_tree):
        rng = random.Random(7)
        for _ in range(60):
            t = rng.randrange(HORIZON)
            assert big_tree.lookup(t) == reference.instantaneous_value(
                FACTS, "sum", t
            )

    def test_range_query_at_scale(self, big_tree):
        window = Interval(HORIZON // 2, HORIZON // 2 + 20_000)
        table = big_tree.range_query(window).coalesce(big_tree.spec.eq)
        rng = random.Random(11)
        for _ in range(20):
            t = rng.randrange(window.start, window.end)
            assert table.value_at(t) == reference.instantaneous_value(
                FACTS, "sum", t
            )

    def test_update_cost_independent_of_size(self, big_tree):
        snapshot = big_tree.store.stats.snapshot()
        big_tree.insert(1, Interval(10, HORIZON - 10))
        reads = (big_tree.store.stats - snapshot).reads
        assert reads <= 8 * big_tree.height
        big_tree.delete(1, Interval(10, HORIZON - 10))

    def test_disk_tree_at_scale(self, tmp_path):
        sample = FACTS[:10_000]
        with PagedNodeStore(
            str(tmp_path / "big.sbt"), "sum", buffer_capacity=64
        ) as store:
            tree = SBTree(
                "sum",
                store,
                branching=store.default_branching,
                leaf_capacity=store.default_leaf_capacity,
            )
            for value, interval in sample:
                tree.insert(value, interval)
            assert tree.height <= 3
            rng = random.Random(13)
            for _ in range(25):
                t = rng.randrange(HORIZON)
                assert tree.lookup(t) == reference.instantaneous_value(
                    sample, "sum", t
                )

    def test_msb_at_scale(self):
        sample = [(abs(v) % 100, i) for v, i in FACTS[:10_000]]
        msb = MSBTree("max", branching=64, leaf_capacity=64)
        for value, interval in sample:
            msb.insert(value, interval)
        rng = random.Random(17)
        for _ in range(25):
            t = rng.randrange(HORIZON)
            w = rng.choice([0, 1_000, 100_000])
            assert msb.window_lookup(t, w) == reference.cumulative_value(
                sample, "max", t, w
            )

    def test_dual_at_scale_with_deletes(self):
        sample = FACTS[:8_000]
        dual = DualTreeAggregate("sum", branching=64, leaf_capacity=64)
        for value, interval in sample:
            dual.insert(value, interval)
        for value, interval in sample[::2]:
            dual.delete(value, interval)
        live = [f for i, f in enumerate(sample) if i % 2 == 1]
        rng = random.Random(19)
        for _ in range(20):
            t = rng.randrange(HORIZON)
            w = rng.choice([0, 10_000])
            assert dual.window_lookup(t, w) == reference.cumulative_value(
                live, "sum", t, w
            )
