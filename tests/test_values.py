"""Unit tests for the aggregate value algebra (acc, diff, v0, effects)."""

import pytest
from hypothesis import given, strategies as st

from repro import AggregateKind, spec_for
from repro.core.values import AggregateSpec

small = st.integers(-1000, 1000)


class TestSpecLookup:
    def test_by_enum_string_and_spec(self):
        spec = spec_for(AggregateKind.SUM)
        assert spec_for("sum") is spec
        assert spec_for("SUM") is spec
        assert spec_for(spec) is spec

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            spec_for("median")

    @pytest.mark.parametrize(
        "kind,v0",
        [("sum", 0), ("count", 0), ("avg", (0, 0)), ("min", None), ("max", None)],
    )
    def test_initial_values(self, kind, v0):
        spec = spec_for(kind)
        assert spec.v0 == v0
        assert spec.is_initial(v0)


class TestAcc:
    @given(x=small, y=small)
    def test_sum(self, x, y):
        assert spec_for("sum").acc(x, y) == x + y

    @given(x=small, y=small)
    def test_min_max(self, x, y):
        assert spec_for("min").acc(x, y) == min(x, y)
        assert spec_for("max").acc(x, y) == max(x, y)

    @given(x=small)
    def test_null_identity(self, x):
        for kind in ("min", "max"):
            spec = spec_for(kind)
            assert spec.acc(None, x) == x
            assert spec.acc(x, None) == x
            assert spec.acc(None, None) is None

    @given(a=small, b=small, c=small, d=small)
    def test_avg_pairs(self, a, b, c, d):
        assert spec_for("avg").acc((a, b), (c, d)) == (a + c, b + d)

    @given(x=small, y=small, z=small)
    def test_acc_associative(self, x, y, z):
        for kind in ("sum", "min", "max"):
            acc = spec_for(kind).acc
            assert acc(acc(x, y), z) == acc(x, acc(y, z))


class TestDiffAndInversion:
    @given(x=small, y=small)
    def test_diff_inverts_acc(self, x, y):
        for kind in ("sum", "count"):
            spec = spec_for(kind)
            assert spec.diff(spec.acc(x, y), y) == x

    @given(a=small, b=small, c=small, d=small)
    def test_avg_diff(self, a, b, c, d):
        spec = spec_for("avg")
        assert spec.diff(spec.acc((a, b), (c, d)), (c, d)) == (a, b)

    def test_min_max_not_invertible(self):
        for kind in ("min", "max"):
            spec = spec_for(kind)
            assert spec.diff is None
            assert not spec.invertible
            with pytest.raises(ValueError):
                spec.negated_effect(5)


class TestEffects:
    def test_effect_shapes(self):
        assert spec_for("sum").effect(7) == 7
        assert spec_for("count").effect(7) == 1
        assert spec_for("avg").effect(7) == (7, 1)
        assert spec_for("min").effect(7) == 7
        assert spec_for("max").effect(7) == 7

    def test_negated_effects(self):
        assert spec_for("sum").negated_effect(7) == -7
        assert spec_for("count").negated_effect(7) == -1
        assert spec_for("avg").negated_effect(7) == (-7, -1)

    @given(x=small)
    def test_effect_plus_negation_is_initial(self, x):
        for kind in ("sum", "count", "avg"):
            spec = spec_for(kind)
            assert spec.is_initial(spec.acc(spec.effect(x), spec.negated_effect(x)))


class TestFinalize:
    def test_avg_quotient(self):
        spec = spec_for("avg")
        assert spec.finalize((7, 4)) == pytest.approx(1.75)
        assert spec.finalize((0, 0)) is None

    def test_passthrough(self):
        assert spec_for("sum").finalize(5) == 5
        assert spec_for("min").finalize(None) is None

    def test_specs_are_frozen(self):
        spec = spec_for("sum")
        with pytest.raises(AttributeError):
            spec.v0 = 1
