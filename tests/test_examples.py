"""Smoke tests: every example script must run cleanly."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def run_example(name):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print something"


def test_quickstart_reproduces_figure3():
    result = run_example("quickstart.py")
    # The Figure 3 rows appear in the printed SumDosage table.
    for fragment in ("2  [5, 10)", "8  [10, 15)", "1  [45, 50)"):
        assert fragment in result.stdout
    assert "lookup(SumDosage, 19) = 6" in result.stdout


def test_warehouse_example_shows_advantage():
    result = run_example("warehouse_dosage.py")
    assert "Both representations agree: True" in result.stdout
    assert "advantage" in result.stdout


def test_monitoring_example_reports_flat_reads():
    result = run_example("moving_window_monitoring.py")
    assert "MSB-tree node reads" in result.stdout
