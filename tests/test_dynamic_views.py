"""Tests for the dynamic materialized-view DAG (repro.warehouse.dynamic).

Covers the scheduler (lag parsing, cycle rejection, diamond refreshed
once per tick, ``downstream`` laziness, transitive staleness), the
incremental refresh path (oracle equivalence under inserts and deletes,
grouped cascades), watermark persistence across close/reopen, and the
full service integration: a 3-level DAG driven over TCP, the typed wire
codec for ``query_view``, pinned multi-view reads, and the ``repro
view`` CLI verbs.
"""

import random

import pytest

from repro.core import reference
from repro.warehouse.dynamic import (
    DOWNSTREAM,
    CycleError,
    DynamicCatalog,
    ViewDependencyError,
    parse_lag,
)


def _facts(catalog, table="doses"):
    """The base table's live rows as (value, (start, end)) pairs."""
    return [
        (row.value, (row.valid.start, row.valid.end))
        for row in catalog.table(table)
    ]


class TestLagParsing:
    def test_units(self):
        assert parse_lag("5s") == 5.0
        assert parse_lag("500ms") == 0.5
        assert parse_lag("2m") == 120.0
        assert parse_lag("1h") == 3600.0
        assert parse_lag("1d") == 86400.0
        assert parse_lag(2.5) == 2.5
        assert parse_lag("0") == 0.0
        assert parse_lag("downstream") is DOWNSTREAM
        assert parse_lag(DOWNSTREAM) is DOWNSTREAM

    def test_rejects_junk(self):
        for bad in ("-1s", "fast", "", None, True, -3):
            with pytest.raises((ValueError, TypeError)):
                parse_lag(bad)


class TestDagStructure:
    def test_cycle_rejected_at_create(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("a", "t", "sum")
        cat.create_view("b", "a", "sum")
        with pytest.raises(CycleError):
            cat.create_view("a2", ["b", "a2"], "sum", create_sources=True)
        with pytest.raises(CycleError):
            cat.create_view("self", "self", "sum", create_sources=True)
        # The failed creates left nothing behind.
        assert sorted(cat.view_names()) == ["a", "b"]

    def test_unknown_source_rejected(self):
        cat = DynamicCatalog()
        with pytest.raises(ViewDependencyError):
            cat.create_view("v", "missing", "sum")

    def test_min_over_view_rejected(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("s", "t", "sum")
        # Refreshing a view retracts rows; MIN/MAX cannot absorb them.
        with pytest.raises(ValueError, match="MIN"):
            cat.create_view("m", "s", "min")
        cat.create_view("m_ok", "t", "min")  # over a base table is fine

    def test_drop_view_refused_with_dependents(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("a", "t", "sum")
        cat.create_view("b", "a", "sum")
        with pytest.raises(ViewDependencyError, match="b"):
            cat.drop_view("a")
        cat.drop_view("b")
        cat.drop_view("a")
        with pytest.raises(ViewDependencyError):
            cat.drop_table("missing")

    def test_duplicate_names_rejected(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        with pytest.raises(ValueError):
            cat.create_table("t")
        cat.create_view("v", "t", "sum")
        with pytest.raises(ValueError):
            cat.create_view("v", "t", "sum")


class TestScheduler:
    def test_diamond_refreshes_once_per_tick(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("left", "t", "sum", lag=0)
        cat.create_view("right", "t", "count", lag=0)
        cat.create_view("top", ["left", "right"], "sum", lag=0)
        cat.insert("t", 4, (0, 10))
        cat.insert("t", 2, (5, 20))
        clock.advance(1.0)
        cat.tick()
        stats = cat.stats()["views"]
        assert [stats[n]["refreshes"] for n in ("left", "right", "top")] == [1, 1, 1]
        # top = sum over left's sums and right's counts
        assert cat.read("top", 7).value == 4 + 2 + 2
        # A tick with nothing pending refreshes nobody.
        cat.tick()
        stats = cat.stats()["views"]
        assert [stats[n]["refreshes"] for n in ("left", "right", "top")] == [1, 1, 1]

    def test_downstream_refreshes_only_when_needed(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("lazy", "t", "sum", lag="downstream")
        cat.insert("t", 3, (0, 10))
        clock.advance(100.0)
        cat.tick()
        assert cat.stats()["views"]["lazy"]["refreshes"] == 0
        # A read is a need: the view refreshes on demand.
        assert cat.read("lazy", 5).value == 3
        assert cat.stats()["views"]["lazy"]["refreshes"] == 1

    def test_downstream_pulled_by_dependent_tick(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("lazy", "t", "sum", lag="downstream")
        cat.create_view("eager", "lazy", "sum", lag=0)
        cat.insert("t", 3, (0, 10))
        clock.advance(1.0)
        consumed = cat.tick()
        # The eager dependent's tick obliges the lazy ancestor to move.
        assert consumed.get("lazy") == 1
        assert cat.stats()["views"]["eager"]["refreshes"] == 1

    def test_numeric_lag_waits_out_its_budget(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("hourly", "t", "sum", lag="1h")
        cat.insert("t", 3, (0, 10))
        clock.advance(10.0)
        assert cat.tick() == {}  # 10s old < 1h budget
        clock.advance(3600.0)
        assert cat.tick() == {"hourly": 1}

    def test_transitive_staleness_sees_through_fresh_intermediate(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        mid = cat.create_view("mid", "t", "sum", lag="1h")
        top = cat.create_view("top", "mid", "sum", lag="1h")
        cat.insert("t", 3, (0, 10))
        clock.advance(5.0)
        # Neither view has consumed the event; both are 5s stale --
        # top's staleness must not read 0 just because mid emitted
        # nothing yet.
        assert cat.staleness(mid) == pytest.approx(5.0)
        assert cat.staleness(top) == pytest.approx(5.0)
        cat.refresh()
        assert cat.staleness(top) == 0.0


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestIncrementalCorrectness:
    def test_cascade_matches_oracle_under_inserts_and_deletes(self):
        rng = random.Random(5)
        cat = DynamicCatalog()
        cat.create_table("doses")
        cat.create_view("by_patient", "doses", "sum", key="patient")
        cat.create_view("total", "by_patient", "sum")
        live = []
        for step in range(120):
            if live and rng.random() < 0.3:
                row = live.pop(rng.randrange(len(live)))
                cat.delete("doses", row)
            else:
                s = rng.randint(0, 900)
                e = s + rng.randint(1, 120)
                live.append(
                    cat.insert("doses", rng.randint(1, 9), (s, e),
                               patient=f"p{rng.randrange(4)}")
                )
            if step % 10 == 9:
                cat.refresh()
                facts = _facts(cat)
                for t in (100, 400, 800):
                    got = cat.read("total", t).value
                    want = reference.instantaneous_value(facts, "sum", t)
                    assert (got or 0) == (want or 0), f"t={t} step={step}"
                    per_key = cat.read("by_patient", t).value
                    assert sum(v for v in per_key.values() if v) == (want or 0)

    def test_grouped_read_by_key_and_unknown_key(self):
        cat = DynamicCatalog()
        cat.create_table("doses")
        cat.create_view("by_patient", "doses", "sum", key="patient")
        cat.insert("doses", 2, (0, 10), patient="amy")
        cat.insert("doses", 3, (5, 20), patient="bob")
        cat.refresh()
        assert cat.read("by_patient", 7, key="amy").value == 2
        assert cat.read("by_patient", 7, key="nobody").value in (0, None)
        both = cat.read("by_patient", 7).value
        assert both == {"amy": 2, "bob": 3}

    def test_avg_finalizes_through_cascade(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("mean", "t", "avg")
        cat.insert("t", 4, (0, 10))
        cat.insert("t", 2, (0, 10))
        cat.refresh()
        assert cat.read("mean", 5).value == pytest.approx(3.0)
        assert cat.read("mean", 50).value is None

    def test_pinned_report_is_consistent(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("a", "t", "sum", lag="1h")
        cat.create_view("b", "a", "sum", lag="1h")
        cat.insert("t", 3, (0, 10))
        out = cat.report(["a", "b"], 5, pin=True)
        assert out["pinned"] is True
        assert out["views"]["a"]["value"] == 3
        assert out["views"]["b"]["value"] == 3
        assert out["base_watermarks"] == {"t": 1}
        # Both views sit at the same base watermark after the pin.
        assert out["views"]["a"]["watermark"] == 1


class TestPersistence:
    def test_watermarks_survive_close_and_reopen(self, tmp_path):
        directory = str(tmp_path / "cat")
        with DynamicCatalog(directory) as cat:
            cat.create_table("doses")
            cat.create_view("by_patient", "doses", "sum", key="patient")
            cat.create_view("total", "by_patient", "sum")
            cat.insert("doses", 2, (0, 10), patient="amy")
            cat.insert("doses", 3, (5, 20), patient="bob")
            cat.refresh()
            before = cat.stats()["views"]

        with DynamicCatalog(directory) as cat:
            after = cat.stats()["views"]
            for name in ("by_patient", "total"):
                assert after[name]["watermarks"] == before[name]["watermarks"]
                assert after[name]["refreshes"] == before[name]["refreshes"]
                assert after[name]["pending"] == 0
            # Values come back without reconsuming anything.
            assert cat.read("total", 7).value == 5
            assert cat.refresh() == {}

    def test_resume_consumes_only_new_events(self, tmp_path):
        directory = str(tmp_path / "cat")
        with DynamicCatalog(directory) as cat:
            cat.create_table("t")
            cat.create_view("v", "t", "sum")
            cat.insert("t", 2, (0, 10))
            cat.refresh()

        with DynamicCatalog(directory) as cat:
            cat.insert("t", 5, (5, 20))
            consumed = cat.refresh()
            assert consumed == {"v": 1}  # just the new event
            assert cat.read("v", 7).value == 7

    def test_unbounded_intervals_roundtrip(self, tmp_path):
        from repro.core.intervals import POS_INF

        directory = str(tmp_path / "cat")
        with DynamicCatalog(directory) as cat:
            cat.create_table("t")
            cat.create_view("v", "t", "sum")
            cat.insert("t", 4, (10, POS_INF))
            cat.refresh()

        with DynamicCatalog(directory) as cat:
            assert cat.read("v", 10**9).value == 4


class TestServiceIntegration:
    @pytest.fixture()
    def handle(self):
        from repro.service import ServerHandle
        from repro.sharding import ShardedTree

        sharded = ShardedTree("sum", num_shards=2, span=(0, 10_000))
        with ServerHandle.start(sharded, view_tick=0.0) as handle:
            yield handle

    def test_three_level_dag_over_tcp_matches_oracle(self, handle):
        from repro.service import ServiceClient

        rng = random.Random(11)
        facts = []
        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            svc.create_view("by_patient", "doses", "sum",
                            key="patient", lag="downstream")
            svc.create_view("total", "by_patient", "sum", lag="downstream")
            for _ in range(4):
                rows = []
                for _ in range(25):
                    s = rng.randint(0, 9_000)
                    e = s + rng.randint(1, 400)
                    v = rng.randint(1, 9)
                    rows.append([v, s, e, {"patient": f"p{rng.randrange(4)}"}])
                    facts.append((v, (s, e)))
                assert svc.table_insert("doses", rows) == 25
                svc.refresh_view()
                for t in (2_000, 5_000, 8_000):
                    got = svc.query_view("total", t)
                    want = reference.instantaneous_value(facts, "sum", t)
                    assert (got["value"] or 0) == (want or 0)
                    assert got["staleness_s"] == 0.0

    def test_query_view_typed_codec_roundtrip(self, handle):
        from repro.service import ServiceClient

        with ServiceClient(handle.host, handle.port, timeout=10.0,
                           codec="binary") as svc:
            svc.table_insert("doses", [[2, 0, 10, {"patient": "amy"}]])
            svc.create_view("one", "doses", "sum", lag="downstream")
            got = svc.query_view("one", 5)
            assert got["value"] == 2
            assert isinstance(got["watermark"], int)
            keyed = svc.create_view("by_p", "doses", "sum",
                                    key="patient", lag="downstream")
            assert keyed["key"] == "patient"
            got = svc.query_view("by_p", 5, key="amy")
            assert got["value"] == 2

    def test_pinned_multi_view_read_over_tcp(self, handle):
        from repro.service import ServiceClient

        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            svc.table_insert("doses", [[2, 0, 10, {"patient": "amy"}]])
            svc.create_view("by_p", "doses", "sum",
                            key="patient", lag="downstream")
            svc.create_view("total", "by_p", "sum", lag="downstream")
            out = svc.query_views(["by_p", "total"], 5, pin=True)
            assert out["pinned"] is True
            assert out["views"]["total"]["value"] == 2
            assert out["base_watermarks"] == {"doses": 1}

    def test_view_errors_surface_as_bad_request(self, handle):
        from repro.service import ServiceClient, ServiceError

        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            with pytest.raises(ServiceError):
                svc.query_view("missing", 5)
            svc.table_insert("doses", [[2, 0, 10]])
            svc.create_view("a", "doses", "sum")
            svc.create_view("b", "a", "sum")
            with pytest.raises(ServiceError):
                svc.drop_view("a")  # b still consumes it
            with pytest.raises(ServiceError):
                svc.create_view("c", ["c"], "sum")  # self-cycle

    def test_stats_and_top_panel_carry_views(self, handle):
        from repro.service import ServiceClient
        from repro.service.top import render_top

        with ServiceClient(handle.host, handle.port, timeout=10.0) as svc:
            svc.table_insert("doses", [[2, 0, 10]])
            svc.create_view("v", "doses", "sum", lag="5s")
            svc.refresh_view("v")
            stats = svc.stats()
            per_view = stats["views"]["views"]
            assert per_view["v"]["refreshes"] == 1
            frame = render_top(stats)
            assert "views (staleness vs lag target):" in frame
            assert "v " in frame

    def test_cli_view_verbs(self, handle, capsys):
        from repro.cli import main

        base = ["--host", handle.host, "--port", str(handle.port)]
        assert main(["view", "insert", "doses",
                     "--row", "2,0,10,amy", "--row", "3,5,20,bob",
                     *base]) == 0
        assert main(["view", "create", "by_key", "--over", "doses",
                     "--agg", "sum", "--key", "key", "--lag", "downstream",
                     *base]) == 0
        assert main(["view", "query", "by_key", "--at", "7",
                     "--key", "amy", *base]) == 0
        out = capsys.readouterr().out
        assert '"value": 2' in out
        assert main(["view", "stats", *base]) == 0
        assert main(["view", "refresh", *base]) == 0
        assert main(["view", "drop", "by_key", *base]) == 0
        with pytest.raises(SystemExit):
            main(["view", "drop", "by_key", *base])  # already gone
