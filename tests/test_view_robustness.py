"""Robustness tests for the crash-safe, replicated view catalog.

Covers the PR-10 surface end to end: bounded change-log retention under
sustained ingest (with restore-and-resume oracle equivalence), the
checkpoint corruption triple (truncation, trailing garbage, leftover
mid-rename temp) falling back to the retained ``.prev`` checkpoint --
or raising :class:`CatalogCheckpointError` in ``strict`` mode --
quarantine/tick isolation with degraded reads and ``repair``,
tree-checkpoint restore without log replay, bootstrapping new views
over compacted sources, the offline ``fsck_dynamic`` audit, a sampled
catalog crash sweep, and view DDL shipping down the replication
journal (replica-served ``query_view``, failover keeping the catalog,
``repair_view`` round-trip).
"""

import json
import os
import random
import time

import pytest

from repro.core import reference
from repro.crashcheck import catalog_sweep
from repro.service.client import ServiceClient
from repro.service.server import ServerHandle
from repro.sharding import ShardedTree
from repro.storage import fsck_dynamic
from repro.warehouse.dynamic import (
    CHECKPOINT_NAME,
    CatalogCheckpointError,
    DynamicCatalog,
)


def _facts(catalog, table="t"):
    return [
        (row.value, (row.valid.start, row.valid.end))
        for row in catalog.table(table)
    ]


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Bounded retention
# ----------------------------------------------------------------------
class TestRetentionBound:
    def test_log_stays_bounded_under_sustained_ingest(self, tmp_path):
        """With every consumer caught up, each save compacts the consumed
        prefix: the retained log never grows with total ingest."""
        directory = str(tmp_path / "cat")
        batch = 25
        with DynamicCatalog(directory) as cat:
            cat.create_table("t")
            cat.create_view("v", "t", "sum")
            retained = []
            for i in range(12 * batch):
                cat.insert("t", 1 + i % 3, (i % 200, i % 200 + 10))
                if i % batch == batch - 1:
                    cat.refresh()
                    cat.save()
                    retained.append(cat.stats()["tables"]["t"]["log_retained"])
            # O(unconsumed), not O(ingested): after refresh+save the
            # consumed prefix is gone, regardless of how much history
            # the table has absorbed.
            assert max(retained) == 0
            assert cat.stats()["tables"]["t"]["log_base"] == 12 * batch

        # Restore and resume: the compacted catalog reopens from tree
        # checkpoints and keeps matching the brute-force oracle.
        with DynamicCatalog(directory) as cat:
            assert cat.stats()["tables"]["t"]["log_base"] == 12 * batch
            cat.insert("t", 7, (40, 90))
            cat.refresh()
            facts = _facts(cat)
            for t in (5, 45, 120, 199):
                want = reference.instantaneous_value(facts, "sum", t)
                assert (cat.read("v", t).value or 0) == (want or 0), f"t={t}"

    def test_unconsumed_tail_is_kept(self):
        """A lagging consumer pins the log: only the prefix below the
        minimum consumer watermark is compactable."""
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("fast", "t", "sum")
        cat.create_view("slow", "t", "count")
        for i in range(10):
            cat.insert("t", 1, (i, i + 5))
        cat.refresh("fast")  # slow stays at watermark 0
        cat.compact()
        # The table's log is pinned by the lagging consumer (the view's
        # own output log may compact -- nobody consumes it).
        assert cat.stats()["tables"]["t"]["log_retained"] == 10
        cat.refresh()  # now everyone is at head
        cat.compact()
        assert cat.stats()["tables"]["t"]["log_retained"] == 0

    def test_integer_retention_keeps_slack(self):
        cat = DynamicCatalog(retention=4)
        cat.create_table("t")
        cat.create_view("v", "t", "sum")
        for i in range(10):
            cat.insert("t", 1, (i, i + 5))
        cat.refresh()
        cat.compact()
        assert cat.stats()["tables"]["t"]["log_retained"] == 4

    def test_full_retention_never_drops(self):
        cat = DynamicCatalog(retention="full")
        cat.create_table("t")
        cat.create_view("v", "t", "sum")
        for i in range(10):
            cat.insert("t", 1, (i, i + 5))
        cat.refresh()
        assert cat.compact() == 0
        assert cat.stats()["tables"]["t"]["log_retained"] == 10

    def test_bad_retention_rejected(self):
        for bad in ("sometimes", -1, True, 2.5):
            with pytest.raises(ValueError):
                DynamicCatalog(retention=bad)


# ----------------------------------------------------------------------
# Checkpoint corruption
# ----------------------------------------------------------------------
def _seed_two_checkpoints(directory):
    """Two saves with data in between; returns (facts_at_prev, facts_now).

    No ``close()`` here: closing saves once more, which would rotate
    ``.prev`` up to the latest state and defeat the fallback tests.
    """
    cat = DynamicCatalog(directory, retention="full")
    cat.create_table("t")
    cat.create_view("v", "t", "sum")
    cat.insert("t", 2, (0, 50))
    cat.refresh()
    cat.save()
    first = _facts(cat)
    cat.insert("t", 3, (10, 60))
    cat.refresh()
    cat.save()
    return first, _facts(cat)


class TestCheckpointCorruption:
    def test_truncated_checkpoint_falls_back_to_prev(self, tmp_path):
        directory = str(tmp_path / "cat")
        first, _ = _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with DynamicCatalog(directory) as cat:
            # Last-good state: the .prev checkpoint, i.e. the first save.
            assert _facts(cat) == first
            want = reference.instantaneous_value(first, "sum", 20)
            assert cat.read("v", 20).value == want

    def test_trailing_garbage_falls_back_to_prev(self, tmp_path):
        directory = str(tmp_path / "cat")
        first, _ = _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        with open(path, "ab") as handle:
            handle.write(b"\0\0garbage after the document")
        with DynamicCatalog(directory) as cat:
            assert _facts(cat) == first

    def test_leftover_temp_never_adopted(self, tmp_path):
        directory = str(tmp_path / "cat")
        _, current = _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        for suffix in (".tmp", ".prev.tmp"):
            with open(path + suffix, "wb") as handle:
                handle.write(b'{"version": 2, "torn')
        with DynamicCatalog(directory) as cat:
            # The intact main checkpoint wins; the torn temps are swept.
            assert _facts(cat) == current
        assert not os.path.exists(path + ".tmp")
        assert not os.path.exists(path + ".prev.tmp")

    def test_strict_mode_raises_instead_of_falling_back(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        with open(path, "wb") as handle:
            handle.write(b"not json at all")
        with pytest.raises(CatalogCheckpointError):
            DynamicCatalog(directory, strict=True)

    def test_both_checkpoints_corrupt_raises(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        for target in (path, path + ".prev"):
            with open(target, "wb") as handle:
                handle.write(b"{broken")
        with pytest.raises(CatalogCheckpointError):
            DynamicCatalog(directory)


# ----------------------------------------------------------------------
# Quarantine and repair
# ----------------------------------------------------------------------
def _poison(view, exc):
    def bad_refresh(resolve, now):
        raise exc

    view.refresh = bad_refresh


class TestQuarantine:
    def test_tick_isolates_failing_view(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("good", "t", "sum", lag=0)
        cat.create_view("bad", "t", "count", lag=0)
        _poison(cat.view("bad"), RuntimeError("disk on fire"))
        cat.insert("t", 5, (0, 10))
        clock.advance(1.0)
        errors = []
        cat.tick(on_error=lambda name, exc: errors.append((name, str(exc))))
        # The sibling refreshed; the failure was contained and reported.
        assert cat.read("good", 5).value == 5
        assert errors == [("bad", "disk on fire")]
        stats = cat.stats()
        assert stats["quarantined"] == 1
        assert stats["views"]["bad"]["quarantined"] is True
        assert "disk on fire" in stats["views"]["bad"]["last_error"]
        assert cat.quarantined_names() == ["bad"]
        # Subsequent ticks skip the quarantined view instead of
        # re-raising forever.
        clock.advance(1.0)
        cat.tick(on_error=lambda name, exc: errors.append((name, str(exc))))
        assert len(errors) == 1

    def test_degraded_reads_and_repair(self):
        clock = FakeClock()
        cat = DynamicCatalog(clock=clock)
        cat.create_table("t")
        cat.create_view("v", "t", "sum", lag=0)
        cat.insert("t", 5, (0, 10))
        clock.advance(1.0)
        cat.tick()
        view = cat.view("v")
        original_refresh = view.refresh
        _poison(view, RuntimeError("boom"))
        cat.insert("t", 2, (0, 10))
        clock.advance(1.0)
        cat.tick()
        # Quarantined: reads still serve the last good state, flagged.
        reading = cat.read("v", 5)
        assert reading.degraded is True
        assert reading.value == 5
        # Repair with the fault still present goes straight back into
        # quarantine and propagates the cause.
        with pytest.raises(RuntimeError, match="boom"):
            cat.repair("v")
        assert cat.view("v").quarantined is True
        # Fix the fault; repair clears the flag and catches up.
        view.refresh = original_refresh
        out = cat.repair("v")
        assert out["was_quarantined"] is True
        assert out["refreshed"].get("v", 0) >= 1
        reading = cat.read("v", 5)
        assert reading.degraded is False
        assert reading.value == 7

    def test_explicit_refresh_still_propagates(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("v", "t", "sum")
        _poison(cat.view("v"), RuntimeError("explicit"))
        cat.insert("t", 1, (0, 5))
        with pytest.raises(RuntimeError, match="explicit"):
            cat.refresh()
        # Explicit refreshes do not quarantine -- the caller saw it.
        assert cat.view("v").quarantined is False


# ----------------------------------------------------------------------
# Tree checkpoints and bootstrap over compacted logs
# ----------------------------------------------------------------------
class TestTreeCheckpointRestore:
    def test_avg_and_grouped_views_restore_without_replay(self, tmp_path):
        directory = str(tmp_path / "cat")
        rng = random.Random(11)
        with DynamicCatalog(directory) as cat:
            cat.create_table("t")
            cat.create_view("by_k", "t", "sum", key="k")
            cat.create_view("mean", "t", "avg")
            for _ in range(60):
                s = rng.randint(0, 400)
                cat.insert("t", rng.randint(1, 9), (s, s + rng.randint(1, 80)),
                           k=f"g{rng.randrange(3)}")
            cat.refresh()
            cat.save()
            facts = _facts(cat)
            want = {
                t: (cat.read("mean", t).value, cat.read("by_k", t).value)
                for t in (10, 150, 390)
            }
        with DynamicCatalog(directory) as cat:
            # The consumed prefix was compacted away on save: a restore
            # that relied on log replay could not produce these values.
            assert cat.stats()["tables"]["t"]["log_retained"] == 0
            assert cat.stats()["tables"]["t"]["log_base"] == 60
            assert _facts(cat) == facts
            for t, (mean, groups) in want.items():
                got = cat.read("mean", t).value
                assert (got or 0) == pytest.approx(mean or 0)
                assert cat.read("by_k", t).value == groups

    def test_new_view_bootstraps_over_compacted_source(self):
        cat = DynamicCatalog()
        cat.create_table("t")
        cat.create_view("v", "t", "sum")
        for i in range(20):
            cat.insert("t", 1 + i % 4, (i * 5, i * 5 + 30))
        cat.refresh()
        cat.compact()
        assert cat.stats()["tables"]["t"]["log_base"] == 20
        assert cat.stats()["tables"]["t"]["log_retained"] == 0
        # The log prefix is gone; a new view cannot replay it and must
        # bootstrap from the relation's live rows instead.
        cat.create_view("late", "t", "sum")
        cat.create_view("late_by_k", "t", "count")
        facts = _facts(cat)
        for t in (3, 47, 95):
            want = reference.instantaneous_value(facts, "sum", t)
            assert (cat.read("late", t).value or 0) == (want or 0)
        # And it keeps maintaining incrementally from there.
        cat.insert("t", 10, (0, 200))
        cat.refresh()
        facts = _facts(cat)
        for t in (3, 47, 95):
            want = reference.instantaneous_value(facts, "sum", t)
            assert (cat.read("late", t).value or 0) == (want or 0)


# ----------------------------------------------------------------------
# Offline audit (fsck_dynamic)
# ----------------------------------------------------------------------
class TestFsckDynamic:
    def test_clean_checkpoint(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        report = fsck_dynamic(os.path.join(directory, CHECKPOINT_NAME))
        assert report.ok
        assert report.errors() == []

    def test_corrupt_main_reports_prev_restorable(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        with open(path, "wb") as handle:
            handle.write(b"{nope")
        report = fsck_dynamic(path)
        assert not report.ok
        codes = {f.code for f in report.findings}
        assert "bad-json" in codes
        assert "prev-restorable" in codes

    def test_watermark_past_head_detected(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        payload = json.load(open(path))
        payload["views"]["v"]["watermarks"]["t"] = 999
        with open(path, "w") as handle:
            json.dump(payload, handle)
        report = fsck_dynamic(path)
        assert not report.ok
        assert any(f.code == "watermark-ahead" for f in report.findings)

    def test_leftover_temp_is_a_warning_not_an_error(self, tmp_path):
        directory = str(tmp_path / "cat")
        _seed_two_checkpoints(directory)
        path = os.path.join(directory, CHECKPOINT_NAME)
        with open(path + ".tmp", "wb") as handle:
            handle.write(b"torn")
        report = fsck_dynamic(path)
        assert report.ok  # warnings do not fail the audit
        assert any(f.code == "leftover-temp" for f in report.findings)


# ----------------------------------------------------------------------
# Crash sweep (sampled -- the exhaustive sweep runs in CI via
# `python -m repro.crashcheck --catalog`)
# ----------------------------------------------------------------------
class TestCatalogCrashSweepSmoke:
    def test_sampled_sweep_recovers_everywhere(self, tmp_path):
        results = catalog_sweep("cat-dag", str(tmp_path), hits="sample")
        assert results, "sweep produced no cases"
        failed = [r for r in results if not r.ok]
        assert not failed, failed


# ----------------------------------------------------------------------
# View replication over the journal stream
# ----------------------------------------------------------------------
def _wait_applied(port, commit, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServiceClient("127.0.0.1", port, timeout=2.0) as svc:
            repl = (svc.stats() or {}).get("replication") or {}
            if repl.get("applied", -1) >= commit:
                return repl
        time.sleep(0.02)
    raise AssertionError(f"replica :{port} never applied commit {commit}")


def _tree():
    return ShardedTree("sum", num_shards=2, span=(0, 1000), branching=4,
                       leaf_capacity=4)


class TestViewReplication:
    @pytest.fixture()
    def pair(self):
        primary = ServerHandle.start(
            _tree(), batch_max=8, batch_delay=0.002, repl_ack_timeout=5.0,
        )
        replica = ServerHandle.start(
            _tree(), batch_max=8, batch_delay=0.002,
            replica_of=f"127.0.0.1:{primary.port}", replica_name="r1",
        )
        try:
            yield primary, replica
        finally:
            replica.stop()
            primary.stop()

    def test_catalog_ships_and_replica_serves_views(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            svc.create_view("by_k", ["obs"], "sum", key="k", lag="downstream")
            svc.table_insert(
                "obs", [[2, 10, 40, {"k": "a"}], [3, 20, 50, {"k": "b"}]]
            )
            commit = svc.stats()["replication"]["commit"]
            want = svc.query_view("by_k", 25, key="a")["value"]
        _wait_applied(replica.port, commit)

        with ServiceClient("127.0.0.1", replica.port, timeout=5.0) as svc:
            reading = svc.query_view("by_k", 25, key="a")
            assert reading["value"] == want == 2
            # Replica-served view reads are stamped like fact reads.
            assert svc.last_watermark == commit
            assert svc.last_staleness_s is not None
            assert svc.last_staleness_s >= 0
            assert "by_k" in svc.view_stats()["views"]

        # The client's replica routing reaches the view too.
        with ServiceClient(
            "127.0.0.1", primary.port, timeout=5.0,
            replicas=[f"127.0.0.1:{replica.port}"],
        ) as svc:
            assert svc.query_view("by_k", 25, key="b")["value"] == 3
            assert svc.last_watermark == commit

    def test_drop_ships_and_promotion_keeps_catalog(self, pair):
        primary, replica = pair
        with ServiceClient("127.0.0.1", primary.port, timeout=5.0) as svc:
            svc.create_view("keep", ["obs"], "sum", lag="downstream")
            svc.create_view("tmp", ["obs"], "count", lag="downstream")
            svc.table_insert("obs", [[4, 0, 100, {}]])
            svc.drop_view("tmp")
            commit = svc.stats()["replication"]["commit"]
        _wait_applied(replica.port, commit)

        with ServiceClient("127.0.0.1", replica.port, timeout=5.0) as svc:
            views = svc.view_stats()["views"]
            assert "keep" in views and "tmp" not in views
            # Promote: the catalog survives the role change wholesale.
            assert svc._request("promote")["promoted"] is True
            assert svc.query_view("keep", 50)["value"] == 4
            # repair_view round-trips against the promoted node.
            out = svc.repair_view("keep")
            assert out["repaired"] == "keep"
            assert out["was_quarantined"] is False
