"""Tests for the TCP service layer (repro.service)."""

import json
import random
import socket
import struct
import threading
import time

import pytest

from repro.core import reference
from repro.faults import FaultInjector
from repro.service import (
    ServerHandle,
    ServiceClient,
    ServiceError,
    TransportError,
    protocol,
)
from repro.sharding import ShardedTree


@pytest.fixture
def sum_server():
    sharded = ShardedTree("sum", num_shards=4, span=(0, 1000),
                          branching=4, leaf_capacity=4)
    with ServerHandle.start(sharded, batch_max=8, batch_delay=0.002) as handle:
        yield handle, sharded


def client_for(handle, **kwargs):
    return ServiceClient(handle.host, handle.port, timeout=5.0, **kwargs)


class TestProtocol:
    def test_frame_roundtrip(self):
        frame = protocol.encode_frame({"op": "ping", "id": 3})
        length = protocol.decode_length(frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_body(frame[4:]) == {"op": "ping", "id": 3}

    def test_infinite_endpoints_roundtrip(self):
        frame = protocol.encode_frame({"lo": float("-inf"), "hi": float("inf")})
        body = protocol.decode_body(frame[4:])
        assert body["lo"] == float("-inf")
        assert body["hi"] == float("inf")

    def test_oversized_frame_rejected(self):
        with pytest.raises(protocol.FrameTooLarge):
            protocol.decode_length(struct.pack(">I", protocol.MAX_FRAME + 1))

    def test_non_object_body_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"\xff\xfe")

    def test_replies_echo_id(self):
        assert protocol.ok_reply(1, {"id": 9}) == {"ok": True, "result": 1,
                                                   "id": 9}
        err = protocol.error_reply("bad_request", "nope", {"id": 9})
        assert err["id"] == 9 and err["ok"] is False


class TestServerBasics:
    def test_ping_and_roundtrip(self, sum_server):
        handle, _ = sum_server
        with client_for(handle) as svc:
            assert svc.ping()
            assert svc.insert(5, 10, 40) == 1
            assert svc.lookup(19) == 5
            assert svc.lookup(40) == 0
            rows = svc.rangeq(0, 100)
            assert (5, ) == tuple(
                value for value, iv in rows if iv.start == 10
            )

    def test_batch_insert_and_oracle(self, sum_server):
        handle, _ = sum_server
        rng = random.Random(2)
        facts = []
        with client_for(handle) as svc:
            batch = []
            for _ in range(60):
                s = rng.randint(0, 900)
                e = s + rng.randint(1, 80)
                v = rng.randint(1, 9)
                batch.append([v, s, e])
                facts.append((v, (s, e)))
            assert svc.batch_insert(batch) == 60
            for t in [0, 250, 251, 499, 500, 750, 999]:
                assert svc.lookup(t) == reference.instantaneous_value(
                    facts, "sum", t
                )
            for value, iv in svc.rangeq(0, 1000):
                t = iv.start
                if t == float("-inf"):
                    continue
                assert value == reference.instantaneous_value(facts, "sum", t)

    def test_window_on_min_kind(self):
        sharded = ShardedTree("min", num_shards=3, span=(0, 300))
        facts = []
        rng = random.Random(4)
        with ServerHandle.start(sharded) as handle:
            with client_for(handle) as svc:
                batch = []
                for _ in range(30):
                    s = rng.randint(0, 280)
                    e = s + rng.randint(1, 40)
                    v = rng.randint(1, 99)
                    batch.append([v, s, e])
                    facts.append((v, (s, e)))
                svc.batch_insert(batch)
                for _ in range(20):
                    t = rng.randint(0, 300)
                    w = rng.randint(0, 60)
                    assert svc.window(t, w) == reference.cumulative_value(
                        facts, "min", t, w
                    )

    def test_concurrent_clients(self, sum_server):
        """Many closed-loop clients on disjoint bands, all verified."""
        handle, _ = sum_server
        errors = []

        def worker(index):
            lo, hi = index * 250, (index + 1) * 250
            rng = random.Random(index)
            facts = []
            try:
                with client_for(handle) as svc:
                    for _ in range(40):
                        s = rng.randint(lo, hi - 10)
                        e = s + rng.randint(1, 9)
                        v = rng.randint(1, 9)
                        svc.insert(v, s, e)
                        facts.append((v, (s, e)))
                        t = rng.randint(lo, hi - 1)
                        got = svc.lookup(t)
                        want = reference.instantaneous_value(facts, "sum", t)
                        if got != want:
                            errors.append((t, got, want))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert errors == []


class TestStructuredErrors:
    def test_unknown_op(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc._request("frobnicate")
            assert info.value.type == protocol.ERR_UNKNOWN_OP
            assert svc.ping()  # connection still usable

    def test_bad_arguments(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc.insert(5, 40, 10)  # empty interval
            assert info.value.type == protocol.ERR_BAD_REQUEST
            with pytest.raises(ServiceError) as info:
                svc._request("lookup", t="nineteen")
            assert info.value.type == protocol.ERR_BAD_REQUEST
            assert svc.ping()

    def test_window_unsupported_on_sum(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc.window(500, 100)
            assert info.value.type == protocol.ERR_UNSUPPORTED
            assert svc.ping()

    def test_malformed_json_gets_error_then_close(self, sum_server):
        handle, _ = sum_server
        with socket.create_connection((handle.host, handle.port), 5) as sock:
            garbage = b"this is not json"
            sock.sendall(struct.pack(">I", len(garbage)) + garbage)
            reply = protocol.recv_frame_blocking(sock)
            assert reply is not None and not reply["ok"]
            assert reply["error"]["type"] == protocol.ERR_BAD_REQUEST
            # The stream offset is untrusted now: server hangs up.
            assert protocol.recv_frame_blocking(sock) is None
        # And a fresh connection works fine.
        with client_for(handle) as svc:
            assert svc.ping()

    def test_non_object_body(self, sum_server):
        handle, _ = sum_server
        with socket.create_connection((handle.host, handle.port), 5) as sock:
            body = json.dumps([1, 2, 3]).encode()
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = protocol.recv_frame_blocking(sock)
            assert reply is not None
            assert reply["error"]["type"] == protocol.ERR_BAD_REQUEST


class TestFaultInjection:
    def test_failed_shard_apply_is_structured_error(self):
        """A crashing shard apply surfaces as ERR_FAULT, not a hang, and
        the shard state stays intact."""
        injector = FaultInjector()
        sharded = ShardedTree("sum", num_shards=4, span=(0, 1000),
                              fault_injector=injector)
        with ServerHandle.start(sharded, batch_max=1) as handle:
            with client_for(handle, retries=0) as svc:
                svc.insert(3, 10, 20)  # hit 1 of shard_apply
                injector.crash_at("shard_apply", hit=2)
                started = time.monotonic()
                with pytest.raises(ServiceError) as info:
                    svc.insert(9, 30, 40)
                assert info.value.type == protocol.ERR_FAULT
                assert "shard_apply" in info.value.message
                assert time.monotonic() - started < 5.0  # no hang
                # Shard state intact: old fact present, failed one absent.
                assert svc.lookup(15) == 3
                assert svc.lookup(35) == 0
                assert svc.stats()["shards"]["facts"] == 1
                assert svc.ping()

    def test_slow_shard_delays_but_succeeds(self):
        injector = FaultInjector()
        injector.slow_at("shard_apply", 0.25, hit=1)
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100),
                              fault_injector=injector)
        with ServerHandle.start(sharded, batch_max=1) as handle:
            with client_for(handle, retries=0) as svc:
                started = time.monotonic()
                assert svc.insert(4, 10, 20) == 1
                assert time.monotonic() - started >= 0.2
                assert svc.lookup(15) == 4
                assert injector.injected.get("delay") == 1

    def test_slow_shard_does_not_block_reads(self):
        """While a write batch stalls in one shard, lookups on another
        connection keep answering (the delay holds a worker thread, not
        the event loop)."""
        injector = FaultInjector()
        injector.slow_at("shard_apply", 0.5, hit=2)
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100),
                              fault_injector=injector)
        with ServerHandle.start(sharded, batch_max=1) as handle:
            with client_for(handle) as svc:
                svc.insert(2, 10, 20)  # hit 1: fast

            stalled_done = threading.Event()

            def stalled_writer():
                with client_for(handle, retries=0) as writer:
                    writer.insert(5, 60, 70)  # hit 2: sleeps 0.5s
                stalled_done.set()

            thread = threading.Thread(target=stalled_writer, daemon=True)
            thread.start()
            time.sleep(0.1)  # let the slow apply start
            with client_for(handle) as reader:
                started = time.monotonic()
                assert reader.lookup(15) == 2
                assert time.monotonic() - started < 0.4
            assert stalled_done.wait(timeout=5)
            thread.join(timeout=5)


class TestLifecycle:
    def test_graceful_drain_completes_inflight(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100))
        handle = ServerHandle.start(sharded, batch_max=64, batch_delay=0.05)
        with client_for(handle) as svc:
            # A write waiting on the 50ms deadline flush when stop() runs.
            result = {}

            def write():
                result["applied"] = svc.insert(7, 10, 20)

            thread = threading.Thread(target=write)
            thread.start()
            time.sleep(0.01)  # request in flight, batch still pending
            handle.stop()
            thread.join(timeout=5)
        assert result.get("applied") == 1
        assert sharded.facts_applied == 1  # drain flushed the batch

    def test_connect_after_stop_fails(self):
        sharded = ShardedTree("sum", num_shards=2, span=(0, 100))
        handle = ServerHandle.start(sharded)
        handle.stop()
        with pytest.raises((TransportError, OSError)):
            with ServiceClient(handle.host, handle.port, timeout=0.5,
                               retries=0) as svc:
                svc.ping()

    def test_stats_content(self, sum_server):
        handle, sharded = sum_server
        with client_for(handle) as svc:
            svc.insert(1, 0, 10)
            svc.lookup(5)
            svc.lookup(700)
            stats = svc.stats()
        assert stats["kind"] == "sum"
        assert stats["shards"]["num_shards"] == 4
        assert stats["shards"]["boundaries"] == [250, 500, 750]
        assert stats["ops"]["service.lookup"]["count"] == 2
        assert stats["ops"]["service.insert"]["count"] == 1
        assert stats["counters"]["service.batch.flushes"] >= 1
        assert stats["batch"]["max"] == 8
        assert "service.errors" not in stats["counters"]

    def test_request_ids_echoed(self, sum_server):
        handle, _ = sum_server
        with socket.create_connection((handle.host, handle.port), 5) as sock:
            sock.sendall(protocol.encode_frame({"op": "ping", "id": "a1"}))
            reply = protocol.recv_frame_blocking(sock)
            assert reply["id"] == "a1" and reply["result"] == "pong"


class TestServerErrors:
    """Unhandled server-side exceptions become structured replies."""

    def test_unhandled_exception_is_server_error(self, sum_server):
        handle, sharded = sum_server

        def explode(t):
            raise RuntimeError("kaboom")

        sharded.lookup_final = explode
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc.lookup(5)
            assert info.value.type == protocol.ERR_SERVER
            assert "RuntimeError" in str(info.value)
            assert "kaboom" in str(info.value)
            # The connection survives: the error was a reply, not a drop.
            assert svc.ping()
            stats = svc.stats()
            assert stats["counters"]["service.errors"] >= 1

    def test_unserializable_reply_is_server_error(self, sum_server):
        handle, sharded = sum_server
        sharded.lookup_final = lambda t: {1, 2, 3}  # a set: not JSON
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc.lookup(5)
            assert info.value.type == protocol.ERR_SERVER
            assert "not serializable" in str(info.value)
            assert svc.ping()

    def test_server_error_carries_trace_id_when_tracing(self, sum_server):
        import io

        from repro import obs
        from repro.obs import trace

        handle, sharded = sum_server

        def explode(t):
            raise RuntimeError("traced failure")

        sharded.lookup_final = explode
        buf = io.StringIO()
        trace.enable(obs.TraceSink(buf), sample=1.0)
        try:
            with client_for(handle, retries=0) as svc:
                with pytest.raises(ServiceError) as info:
                    svc.lookup(5)
        finally:
            trace.disable()
        assert info.value.type == protocol.ERR_SERVER
        assert info.value.trace_id is not None
        # The id in the error matches the trace the client emitted.
        emitted = {json.loads(line)["trace_id"]
                   for line in buf.getvalue().splitlines()}
        assert info.value.trace_id in emitted

    def test_error_without_tracing_has_no_trace_id(self, sum_server):
        handle, sharded = sum_server
        sharded.lookup_final = lambda t: (_ for _ in ()).throw(ValueError("x"))
        with client_for(handle, retries=0) as svc:
            with pytest.raises(ServiceError) as info:
                svc.lookup(5)
        assert info.value.type == protocol.ERR_SERVER
        assert info.value.trace_id is None
