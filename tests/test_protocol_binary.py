"""Tests for the binary wire codec, negotiation, and transport fixes.

Covers the protocol edge cases across BOTH codecs (zero-length frames,
bodies at/past MAX_FRAME, stale and duplicated replies under
pipelining, JSON<->binary negotiation interop) plus regression tests
for two transport bugs: mid-frame EOF must surface as a retryable
ConnectionClosedMidFrame (not a ProtocolError), and a retried request
must re-stamp its *remaining* deadline budget, not the full budget.
"""

import random
import socket
import struct
import threading

import pytest

from repro.core import reference
from repro.service import (
    ServerHandle,
    ServiceClient,
    ServiceError,
    protocol,
)
from repro.sharding import ShardedTree


@pytest.fixture
def sum_server():
    sharded = ShardedTree("sum", num_shards=4, span=(0, 1000),
                          branching=4, leaf_capacity=4)
    with ServerHandle.start(sharded, batch_max=8, batch_delay=0.002) as handle:
        yield handle, sharded


def client_for(handle, **kwargs):
    return ServiceClient(handle.host, handle.port, timeout=5.0, **kwargs)


class FakeServer:
    """A scriptable server: ``handler(message) -> [reply frames]``.

    Lets a test control the exact bytes the client sees -- duplicated
    replies, stale ids, out-of-order delivery, hostile negotiation.
    """

    def __init__(self, handler):
        self.handler = handler
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            while True:
                message = protocol.recv_frame_blocking(conn)
                if message is None:
                    return
                for frame in self.handler(message):
                    conn.sendall(frame)
        except (OSError, protocol.ProtocolError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._listener.close()


# ----------------------------------------------------------------------
# Binary codec roundtrips
# ----------------------------------------------------------------------
REQUESTS = [
    {"op": "ping"},
    {"op": "stats"},
    {"op": "insert", "value": 5, "start": 10, "end": 40},
    {"op": "insert", "value": -2.75, "start": 10.25, "end": 40},
    {"op": "insert", "value": None, "start": 0, "end": 1},
    {"op": "insert", "value": "tagged", "start": -5, "end": 7},
    {"op": "insert", "value": True, "start": 0, "end": 1},
    {"op": "batch_insert", "facts": [[1, 0, 10], [2.5, 3, 4], [None, 5, 6]]},
    {"op": "batch_insert", "facts": []},
    {"op": "lookup", "t": 19},
    {"op": "rangeq", "start": float("-inf"), "end": float("inf")},
    {"op": "window", "t": 30, "w": 20},
]

REPLIES = [
    {"ok": True, "result": None, "id": 1},
    {"ok": True, "result": 123},
    {"ok": True, "result": -2.5},
    {"ok": True, "result": "pong"},
    {"ok": True, "result": True},
    {"ok": True, "result": [], "id": 8},
    {"ok": True, "result": [[5, 10, 20], [None, 20, 30], [2.5, 30, 40.5]],
     "id": 9},
    {"ok": True, "result": {"applied": 3}, "id": 2},
    {"ok": True, "result": {"applied": 0, "duplicate": True, "evicted": True}},
    {"ok": False, "id": 4,
     "error": {"type": "overloaded", "message": "busy", "retry_after": 0.25}},
    {"ok": False,
     "error": {"type": "server_error", "message": "boom", "trace_id": "ab12"}},
]


class TestBinaryRoundtrip:
    @pytest.mark.parametrize("message", REQUESTS)
    def test_requests_roundtrip_on_both_codecs(self, message):
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[0] == protocol.BINARY_MAGIC
        assert protocol.codec_of(body) == protocol.CODEC_BINARY
        assert protocol.decode_body(body) == message
        json_body = protocol.encode_body(message, protocol.CODEC_JSON)
        assert protocol.codec_of(json_body) == protocol.CODEC_JSON
        # Binary and JSON decodes of the same message compare equal.
        assert protocol.decode_body(json_body) == protocol.decode_body(body)

    @pytest.mark.parametrize("message", REPLIES)
    def test_replies_roundtrip_on_both_codecs(self, message):
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[0] == protocol.BINARY_MAGIC
        assert protocol.decode_body(body) == message
        json_body = protocol.encode_body(message, protocol.CODEC_JSON)
        assert protocol.decode_body(json_body) == message

    def test_envelope_fields_roundtrip(self):
        message = {
            "op": "insert",
            "id": 7,
            "client": "client-1",
            "seq": 42,
            "deadline_ms": 250.5,
            "trace": {"id": "0123456789abcdef", "span": "fedcba98"},
            "value": 1,
            "start": 0,
            "end": 5,
        }
        assert protocol.decode_body(
            protocol.encode_body(message, protocol.CODEC_BINARY)
        ) == message

    def test_string_request_id_roundtrips(self):
        message = {"op": "ping", "id": "req-000017"}
        decoded = protocol.decode_body(
            protocol.encode_body(message, protocol.CODEC_BINARY)
        )
        assert decoded == message and isinstance(decoded["id"], str)

    def test_whole_float_times_restored_to_int(self):
        body = protocol.encode_body(
            {"op": "insert", "value": 1, "start": 10.0, "end": 40.0},
            protocol.CODEC_BINARY,
        )
        decoded = protocol.decode_body(body)
        assert isinstance(decoded["start"], int)
        assert isinstance(decoded["end"], int)


class TestJsonWrapFallback:
    def test_unknown_op_wrapped_verbatim(self):
        message = {"op": "frobnicate", "level": 11}
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[0] == protocol.BINARY_MAGIC
        assert protocol.decode_body(body) == message

    def test_extra_request_field_not_dropped(self):
        message = {"op": "lookup", "t": 1, "shard_hint": 3}
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[1] == protocol._T_REQ_JSON
        assert protocol.decode_body(body) == message

    def test_stats_reply_wrapped(self):
        message = {"ok": True, "result": {"shards": {"facts": 9}}, "id": 2}
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[1] == protocol._T_REPLY_JSON
        assert protocol.decode_body(body) == message

    def test_int_outside_i64_carried_exactly(self):
        message = {"op": "lookup", "t": 1, "id": 2**70}
        body = protocol.encode_body(message, protocol.CODEC_BINARY)
        assert body[1] == protocol._T_REQ_JSON
        assert protocol.decode_body(body)["id"] == 2**70


class TestBinaryMalformed:
    def test_truncated_body_rejected(self):
        body = protocol.encode_body(
            {"op": "insert", "value": 5, "start": 10, "end": 40},
            protocol.CODEC_BINARY,
        )
        for cut in (1, 2, len(body) // 2, len(body) - 1):
            with pytest.raises(protocol.ProtocolError):
                protocol.decode_body(body[:cut])

    def test_trailing_bytes_rejected(self):
        body = protocol.encode_body({"op": "ping"}, protocol.CODEC_BINARY)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(body + b"\x00")

    def test_unknown_message_type_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(bytes((protocol.BINARY_MAGIC, 0x7E, 0)))

    def test_unknown_envelope_flags_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(
                bytes((protocol.BINARY_MAGIC, protocol._T_PING, 0x80))
            )


# ----------------------------------------------------------------------
# Framing edge cases (both codecs share the length prefix)
# ----------------------------------------------------------------------
class TestFramingEdges:
    def test_zero_length_frame_is_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"")
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 0))
            with pytest.raises(protocol.ProtocolError) as excinfo:
                protocol.recv_frame_blocking(b)
            # A zero-length frame is the peer's fault, not the network's.
            assert not isinstance(excinfo.value, ConnectionError)
        finally:
            a.close()
            b.close()

    def test_body_exactly_at_max_frame(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME", 256)
        probe = protocol.encode_body({"pad": ""}, protocol.CODEC_JSON)
        message = {"pad": "x" * (256 - len(probe))}
        frame = protocol.encode_frame(message)
        assert protocol.decode_length(frame[:4]) == 256
        assert protocol.decode_body(frame[4:]) == message

    def test_body_one_past_max_frame(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME", 256)
        probe = protocol.encode_body({"pad": ""}, protocol.CODEC_JSON)
        message = {"pad": "x" * (257 - len(probe))}
        with pytest.raises(protocol.FrameTooLarge):
            protocol.encode_frame(message)
        with pytest.raises(protocol.FrameTooLarge):
            protocol.decode_length(struct.pack(">I", 257))


class TestMidFrameEofRegression:
    """EOF inside a frame is a transport failure, never a protocol one."""

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.recv_frame_blocking(b) is None
        finally:
            b.close()

    def test_eof_mid_header(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(protocol.ConnectionClosedMidFrame):
                protocol.recv_frame_blocking(b)
        finally:
            b.close()

    def test_eof_after_header_before_body(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 64))
            a.close()
            with pytest.raises(protocol.ConnectionClosedMidFrame):
                protocol.recv_frame_blocking(b)
        finally:
            b.close()

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_eof_mid_body(self, codec):
        frame = protocol.encode_frame({"op": "lookup", "t": 7, "id": 1}, codec)
        a, b = socket.socketpair()
        try:
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(protocol.ConnectionClosedMidFrame):
                protocol.recv_frame_blocking(b)
        finally:
            b.close()

    def test_mid_frame_eof_is_retryable_not_protocol(self):
        # The classification the retry loop depends on.
        assert issubclass(protocol.ConnectionClosedMidFrame, ConnectionError)
        assert not issubclass(
            protocol.ConnectionClosedMidFrame, protocol.ProtocolError
        )


# ----------------------------------------------------------------------
# Deadline budget across retries (regression)
# ----------------------------------------------------------------------
class TestDeadlineBudgetRegression:
    def test_retries_restamp_remaining_budget(self):
        seen = []

        def handler(message):
            if message.get("op") == "hello":
                return [protocol.encode_frame(
                    protocol.ok_reply({"codec": "json"}, message))]
            seen.append(message.get("deadline_ms"))
            return [protocol.encode_frame(protocol.error_reply(
                protocol.ERR_OVERLOADED, "busy", message, retry_after=0.05))]

        with FakeServer(handler) as srv:
            with ServiceClient(
                srv.host, srv.port, timeout=5.0, codec="json",
                deadline_ms=150.0, retries=20, retry_backoff=0.04,
                retry_backoff_max=0.08, retry_budget=30.0,
                circuit_threshold=1000, jitter_seed=3,
            ) as svc:
                with pytest.raises(ServiceError) as excinfo:
                    svc.lookup(1)
        assert excinfo.value.type == protocol.ERR_OVERLOADED
        # It retried, but each attempt carried only what remained of the
        # 150ms budget -- strictly shrinking, never the full budget again.
        assert len(seen) >= 2
        assert seen[0] <= 150.0
        assert all(later < earlier for earlier, later in zip(seen, seen[1:]))
        assert all(d > 0 for d in seen)
        # The budget, not the retry count, ended the loop: with >=50ms of
        # backoff per retry a 150ms budget cannot fund 20 retries.
        assert len(seen) <= 5


# ----------------------------------------------------------------------
# Pipelining: reply matching under duplication, staleness, reordering
# ----------------------------------------------------------------------
class TestPipelineReplyMatching:
    def test_duplicate_and_stale_replies_discarded(self):
        def handler(message):
            reply = protocol.encode_frame(
                protocol.ok_reply(message["t"] * 2, message))
            stale = protocol.encode_frame(
                protocol.ok_reply(-1, {"id": 999_999_999}))
            return [reply, reply, stale]

        with FakeServer(handler) as srv:
            with ServiceClient(srv.host, srv.port, timeout=5.0,
                               codec="json") as svc:
                for t in range(5):
                    assert svc.lookup(t) == t * 2

    def test_out_of_order_replies_matched_by_id(self):
        buffered = []

        def handler(message):
            buffered.append(message)
            if len(buffered) < 3:
                return []
            frames = [
                protocol.encode_frame(protocol.ok_reply(m["t"] * 10, m))
                for m in reversed(buffered)
            ]
            buffered.clear()
            return frames

        with FakeServer(handler) as srv:
            with ServiceClient(srv.host, srv.port, timeout=5.0,
                               codec="json") as svc:
                futures = [svc.submit("lookup", t=t) for t in (1, 2, 3)]
                assert [f.result() for f in futures] == [10, 20, 30]

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_deep_pipeline_end_to_end(self, sum_server, codec):
        handle, _ = sum_server
        rng = random.Random(5)
        facts = []
        with client_for(handle, codec=codec) as svc:
            futures = []
            for _ in range(60):
                s = rng.randint(0, 900)
                e = s + rng.randint(1, 80)
                v = rng.randint(1, 9)
                facts.append((v, (s, e)))
                futures.append(svc.submit_insert(v, s, e, flush=False))
            svc.flush()
            assert sum(f.result()["applied"] for f in futures) == 60
            times = list(range(0, 1000, 37))
            lookups = [svc.submit("lookup", flush=False, t=t) for t in times]
            svc.flush()
            for t, future in zip(times, lookups):
                assert future.result() == reference.instantaneous_value(
                    facts, "sum", t)


# ----------------------------------------------------------------------
# Codec negotiation interop
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_negotiate_picks_first_supported(self):
        assert protocol.negotiate(["binary", "json"]) == "binary"
        assert protocol.negotiate(["json", "binary"]) == "json"
        assert protocol.negotiate(["zstd-9", "binary"]) == "binary"
        assert protocol.negotiate(["zstd-9"]) == "json"
        assert protocol.negotiate([]) == "json"
        assert protocol.negotiate("binary") == "json"  # malformed offer
        assert protocol.negotiate(None) == "json"

    def test_auto_client_negotiates_binary(self, sum_server):
        handle, _ = sum_server
        with client_for(handle) as svc:
            assert svc.ping()
            assert svc.negotiated_codec == protocol.CODEC_BINARY

    def test_json_client_skips_negotiation(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, codec="json") as svc:
            assert svc.ping()
            assert svc.negotiated_codec == protocol.CODEC_JSON

    def test_binary_and_json_clients_interop(self, sum_server):
        handle, _ = sum_server
        with client_for(handle, codec="binary") as writer:
            assert writer.insert(5, 10, 40) == 1
        with client_for(handle, codec="json") as reader:
            assert reader.lookup(19) == 5

    def test_auto_falls_back_to_json_on_old_server(self):
        def handler(message):
            if message.get("op") == "hello":
                return [protocol.encode_frame(protocol.error_reply(
                    protocol.ERR_UNKNOWN_OP, "unknown op 'hello'", message))]
            return [protocol.encode_frame(
                protocol.ok_reply("pong", message))]

        with FakeServer(handler) as srv:
            with ServiceClient(srv.host, srv.port, timeout=5.0,
                               codec="auto") as svc:
                assert svc.ping()
                assert svc.negotiated_codec == protocol.CODEC_JSON

    def test_strict_binary_fails_on_old_server(self):
        def handler(message):
            return [protocol.encode_frame(protocol.error_reply(
                protocol.ERR_UNKNOWN_OP, "unknown op", message))]

        with FakeServer(handler) as srv:
            with ServiceClient(srv.host, srv.port, timeout=5.0,
                               codec="binary") as svc:
                with pytest.raises(ServiceError):
                    svc.ping()

    def test_server_replies_in_arrival_codec(self, sum_server):
        handle, _ = sum_server

        def recv_raw_body(sock):
            header = b""
            while len(header) < 4:
                header += sock.recv(4 - len(header))
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            return body

        with socket.create_connection((handle.host, handle.port),
                                      timeout=5.0) as sock:
            sock.sendall(protocol.encode_frame(
                {"op": "ping", "id": 1}, protocol.CODEC_BINARY))
            body = recv_raw_body(sock)
            assert body[0] == protocol.BINARY_MAGIC
            assert protocol.decode_body(body)["result"] == "pong"
            sock.sendall(protocol.encode_frame(
                {"op": "ping", "id": 2}, protocol.CODEC_JSON))
            body = recv_raw_body(sock)
            assert body[:1] == b"{"
            assert protocol.decode_body(body)["result"] == "pong"
