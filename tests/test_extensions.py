"""Tests for the smaller library extensions: partitioned materialization,
MSB interval extremum, table sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ConstantIntervalTable, Interval, MSBTree
from repro.core import reference
from repro.query import TemporalQuery
from repro.relation import TemporalRelation
from repro.workloads import PRESCRIPTIONS


class TestPartitionedMaterialization:
    @pytest.fixture()
    def rel(self):
        rel = TemporalRelation("prescription")
        for p in PRESCRIPTIONS:
            rel.insert(p.dosage, p.valid, patient=p.patient)
        return rel

    def test_grouped_view_from_query(self, rel):
        grouped = (
            TemporalQuery(rel)
            .aggregate("sum")
            .partition_by(lambda row: row.payload["patient"])
            .materialize("ByPatient", branching=4, leaf_capacity=4)
        )
        assert grouped.value_at("Amy", 19) == 2
        rel.insert(5, Interval(15, 45), patient="Amy")
        assert grouped.value_at("Amy", 19) == 7

    def test_filter_carries_into_grouped_view(self, rel):
        grouped = (
            TemporalQuery(rel)
            .where(lambda row: row.value >= 2)
            .aggregate("count")
            .partition_by(lambda row: row.payload["patient"])
            .materialize("Heavy", branching=4, leaf_capacity=4)
        )
        assert "Fred" not in grouped.keys()  # dosage 1 filtered
        assert grouped.value_at("Ben", 19) == 1
        rel.insert(1, Interval(0, 100), patient="Ben")  # filtered out
        assert grouped.value_at("Ben", 19) == 1

    def test_grouped_matches_one_shot(self, rel):
        query = TemporalQuery(rel).aggregate("sum")
        partitioned = query.partition_by(lambda row: row.payload["patient"])
        grouped = partitioned.materialize("x", branching=4, leaf_capacity=4)
        assert grouped.values_at(25) == partitioned.at(25)


class TestExtremumOver:
    def build(self):
        msb = MSBTree("max", branching=4, leaf_capacity=4)
        for p in PRESCRIPTIONS:
            msb.insert(p.dosage, p.valid)
        return msb

    def test_known_intervals(self):
        msb = self.build()
        assert msb.extremum_over(10, 30) == 3
        assert msb.extremum_over(35, 44) == 4
        assert msb.extremum_over(46, 49) == 1
        assert msb.extremum_over(100, 200) is None

    def test_point_interval(self):
        msb = self.build()
        assert msb.extremum_over(37, 37) == 4  # same as lookup(37)
        assert msb.extremum_over(37, 37) == msb.lookup(37)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            self.build().extremum_over(10, 9)

    @given(
        facts=st.lists(
            st.tuples(
                st.integers(0, 9),
                st.tuples(st.integers(0, 100), st.integers(1, 40)),
            ),
            max_size=25,
        ),
        lo=st.integers(-10, 150),
        width=st.integers(0, 80),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_window_lookup(self, facts, lo, width):
        msb = MSBTree("min", branching=4, leaf_capacity=4)
        normalized = []
        for value, (start, length) in facts:
            interval = Interval(start, start + length)
            normalized.append((value, interval))
            msb.insert(value, interval)
        hi = lo + width
        assert msb.extremum_over(lo, hi) == msb.window_lookup(hi, width)
        assert msb.extremum_over(lo, hi) == reference.cumulative_value(
            normalized, "min", hi, width
        )


class TestTableSampling:
    def table(self):
        return ConstantIntervalTable(
            [(1, Interval(0, 10)), (2, Interval(10, 20))]
        )

    def test_sample_series(self):
        got = list(self.table().sample(0, 20, 5))
        assert got == [(0, 1), (5, 1), (10, 2), (15, 2)]

    def test_sample_outside_domain_yields_none(self):
        got = dict(self.table().sample(-5, 30, 5))
        assert got[-5] is None
        assert got[25] is None
        assert got[10] == 2

    def test_sample_step_validation(self):
        with pytest.raises(ValueError):
            list(self.table().sample(0, 10, 0))

    def test_span(self):
        assert self.table().span == Interval(0, 20)
        assert ConstantIntervalTable().span is None
