"""Tests for the time-range sharding layer (repro.sharding)."""

import random
import threading

import pytest

from repro import Interval, SBTree
from repro.core import reference
from repro.core.intervals import NEG_INF, POS_INF
from repro.sharding import (
    ShardedTree,
    ShardingError,
    ShardRouter,
    WindowUnsupportedError,
    even_boundaries,
)

KINDS = ["count", "sum", "avg", "min", "max"]


class TestShardRouter:
    def test_rejects_bad_boundaries(self):
        with pytest.raises(ShardingError):
            ShardRouter([30, 10])  # unsorted
        with pytest.raises(ShardingError):
            ShardRouter([10, 10])  # duplicate
        with pytest.raises(ShardingError):
            ShardRouter([10, POS_INF])  # infinite cut

    def test_ranges_cover_timeline(self):
        router = ShardRouter([10, 20, 30])
        assert router.num_shards == 4
        assert router.range_of(0) == Interval(NEG_INF, 10)
        assert router.range_of(1) == Interval(10, 20)
        assert router.range_of(3) == Interval(30, POS_INF)
        # Adjacent ranges tile: each end is the next start.
        for i in range(router.num_shards - 1):
            assert router.range_of(i).end == router.range_of(i + 1).start

    def test_instant_at_boundary_goes_right(self):
        router = ShardRouter([10, 20])
        assert router.shard_of(9) == 0
        assert router.shard_of(10) == 1  # half-open: boundary starts shard 1
        assert router.shard_of(19) == 1
        assert router.shard_of(20) == 2

    def test_interval_ending_at_boundary_stays_left(self):
        router = ShardRouter([10, 20])
        # [5, 10) never contains instant 10, so shard 1 is not touched.
        assert list(router.overlapping(Interval(5, 10))) == [0]
        assert list(router.overlapping(Interval(5, 11))) == [0, 1]
        assert list(router.overlapping(Interval(10, 20))) == [1]

    def test_split_tiles_the_input(self):
        router = ShardRouter([10, 20, 30])
        pieces = list(router.split(Interval(5, 35)))
        assert [index for index, _ in pieces] == [0, 1, 2, 3]
        assert [p for _, p in pieces] == [
            Interval(5, 10),
            Interval(10, 20),
            Interval(20, 30),
            Interval(30, 35),
        ]
        # Unbounded facts split too (outer shards are unbounded).
        pieces = list(router.split(Interval(NEG_INF, POS_INF)))
        assert len(pieces) == 4
        assert pieces[0][1] == Interval(NEG_INF, 10)
        assert pieces[-1][1] == Interval(30, POS_INF)

    def test_even_boundaries(self):
        assert even_boundaries(0, 100, 4) == [25, 50, 75]
        assert even_boundaries(0, 100, 1) == []
        # Int endpoints stay ints.
        assert all(isinstance(b, int) for b in even_boundaries(0, 7, 3))
        # Degenerate spans deduplicate repeated cuts.
        assert even_boundaries(0, 2, 4) == [0, 1]
        with pytest.raises(ShardingError):
            even_boundaries(10, 10, 2)


def random_facts(rng, n, lo=0, hi=1000, max_width=120):
    facts = []
    for _ in range(n):
        s = rng.randint(lo, hi - 1)
        e = s + rng.randint(1, max_width)
        facts.append((rng.randint(1, 9), Interval(s, e)))
    return facts


class TestShardedTreeCorrectness:
    @pytest.mark.parametrize("kind", KINDS)
    def test_matches_single_tree_and_oracle(self, kind):
        rng = random.Random(hash(kind) & 0xFFFF)
        facts = random_facts(rng, 150)
        sharded = ShardedTree(kind, [200, 400, 600, 800],
                              branching=4, leaf_capacity=4)
        single = SBTree(kind, branching=4, leaf_capacity=4)
        for value, interval in facts:
            sharded.insert(value, interval)
            single.insert(value, interval)

        assert sharded.to_table() == single.to_table()
        assert sharded.to_table() == reference.instantaneous_table(facts, kind)
        for t in [-50, 0, 199, 200, 201, 399, 400, 500, 799, 800, 1500]:
            assert sharded.lookup(t) == single.lookup(t)
            assert sharded.lookup_final(t) == single.lookup_final(t)
        for window in [(0, 1000), (150, 450), (395, 405), (790, 810)]:
            got = sharded.range_query(Interval(*window)).coalesce(
                sharded.spec.eq
            )
            want = single.range_query(Interval(*window)).coalesce(
                single.spec.eq
            )
            assert got == want
        sharded.check()

    def test_fact_exactly_at_boundary(self):
        sharded = ShardedTree("sum", [100, 200])
        # Starts at one cut, ends at the next: lands wholly in shard 1.
        sharded.insert(5, Interval(100, 200))
        assert sharded.pieces_applied == [0, 1, 0]
        assert sharded.lookup(99) == 0
        assert sharded.lookup(100) == 5
        assert sharded.lookup(199) == 5
        assert sharded.lookup(200) == 0
        assert sharded.to_table().rows == [(5, Interval(100, 200))]

    def test_fact_spanning_three_plus_shards(self):
        sharded = ShardedTree("count", [100, 200, 300, 400])
        sharded.insert(1, Interval(50, 450))  # touches all 5 shards
        assert sharded.pieces_applied == [1, 1, 1, 1, 1]
        assert sharded.facts_applied == 1
        # Splitting must not double-count: one fact, value 1 everywhere.
        assert sharded.to_table().rows == [(1, Interval(50, 450))]
        for t in [50, 99, 100, 250, 399, 400, 449]:
            assert sharded.lookup(t) == 1

    def test_empty_shards_answer_identity(self):
        sharded = ShardedTree("sum", [100, 200, 300])
        sharded.insert(7, Interval(110, 120))  # only shard 1 has data
        assert sharded.lookup(50) == 0
        assert sharded.lookup(250) == 0
        assert sharded.lookup(500) == 0
        table = sharded.range_query(Interval(0, 400)).coalesce(
            sharded.spec.eq
        )
        single = SBTree("sum")
        single.insert(7, Interval(110, 120))
        assert table == single.range_query(Interval(0, 400)).coalesce(
            single.spec.eq
        )
        stats = sharded.stats()
        assert [s["pieces"] for s in stats["shards"]] == [0, 1, 0, 0]

    @pytest.mark.parametrize("kind", KINDS)
    def test_randomized_boundary_adjacent_facts(self, kind):
        """Facts engineered to start/end exactly at shard cuts."""
        boundaries = [100, 200, 300]
        rng = random.Random(13)
        facts = []
        for _ in range(80):
            anchor = rng.choice(boundaries)
            shape = rng.randrange(4)
            if shape == 0:
                iv = Interval(anchor, anchor + rng.randint(1, 50))
            elif shape == 1:
                iv = Interval(anchor - rng.randint(1, 50), anchor)
            elif shape == 2:
                iv = Interval(anchor - rng.randint(1, 50),
                              anchor + rng.randint(1, 50))
            else:
                a, b = rng.sample(boundaries, 2)
                iv = Interval(min(a, b), max(a, b))
            facts.append((rng.randint(1, 9), iv))
        sharded = ShardedTree(kind, boundaries, branching=4, leaf_capacity=4)
        for value, iv in facts:
            sharded.insert(value, iv)
        assert sharded.to_table() == reference.instantaneous_table(facts, kind)
        for t in list(range(95, 105)) + list(range(195, 205)) + [300, 299]:
            assert sharded.lookup(t) == reference.instantaneous_value(
                facts, kind, t
            )
        sharded.check()

    def test_delete_roundtrip(self):
        sharded = ShardedTree("sum", [100, 200])
        facts = random_facts(random.Random(3), 40, 0, 300, 150)
        for value, iv in facts:
            sharded.insert(value, iv)
        for value, iv in facts:
            sharded.delete(value, iv)
        assert sharded.to_table().rows == []
        assert sharded.facts_applied == 0
        assert sharded.pieces_applied == [0, 0, 0]

    def test_batch_insert_equals_serial(self):
        facts = random_facts(random.Random(5), 60)
        one = ShardedTree("max", [250, 500, 750])
        two = ShardedTree("max", [250, 500, 750])
        for value, iv in facts:
            one.insert(value, iv)
        assert two.batch_insert(facts) == len(facts)
        assert one.to_table() == two.to_table()


class TestShardedWindow:
    @pytest.mark.parametrize("kind", ["min", "max"])
    def test_window_matches_oracle(self, kind):
        rng = random.Random(29)
        facts = random_facts(rng, 100)
        sharded = ShardedTree(kind, [200, 400, 600, 800])
        for value, iv in facts:
            sharded.insert(value, iv)
        for _ in range(40):
            t = rng.randint(-50, 1100)
            w = rng.randint(0, 300)
            got = sharded.window_lookup(t, w)
            assert got == reference.cumulative_value(facts, kind, t, w)

    @pytest.mark.parametrize("kind", ["sum", "count", "avg"])
    def test_invertible_kinds_refuse(self, kind):
        sharded = ShardedTree(kind, [100])
        sharded.insert(2, Interval(0, 50))
        with pytest.raises(WindowUnsupportedError):
            sharded.window_lookup(60, 30)

    def test_negative_window_rejected(self):
        sharded = ShardedTree("min", [100])
        with pytest.raises(ShardingError):
            sharded.window_lookup(50, -1)


class TestShardedTreeConfig:
    def test_needs_boundaries_or_span(self):
        with pytest.raises(ShardingError):
            ShardedTree("sum")
        with pytest.raises(ShardingError):
            ShardedTree("sum", num_shards=4)  # span missing

    def test_num_shards_span_convenience(self):
        sharded = ShardedTree("sum", num_shards=4, span=(0, 100))
        assert sharded.num_shards == 4
        assert list(sharded.router.boundaries) == [25, 50, 75]

    def test_store_count_must_match(self):
        from repro.core.store import MemoryNodeStore

        with pytest.raises(ShardingError):
            ShardedTree("sum", [100], stores=[MemoryNodeStore()])

    def test_paged_stores(self, tmp_path):
        from repro.storage import PagedNodeStore

        stores = [
            PagedNodeStore(str(tmp_path / f"shard-{i}.sbt"), "sum")
            for i in range(3)
        ]
        sharded = ShardedTree("sum", [100, 200], stores=stores)
        sharded.insert(4, Interval(50, 250))
        assert sharded.lookup(150) == 4
        sharded.close()
        # Shards persisted: reopen and read back.
        stores = [
            PagedNodeStore(str(tmp_path / f"shard-{i}.sbt"))
            for i in range(3)
        ]
        reopened = ShardedTree("sum", [100, 200], stores=stores)
        assert reopened.lookup(150) == 4
        assert reopened.to_table().rows == [(4, Interval(50, 250))]
        reopened.close()

    def test_stats_shape(self):
        sharded = ShardedTree("avg", [10, 20])
        sharded.insert(6, Interval(5, 25))
        stats = sharded.stats()
        assert stats["kind"] == "avg"
        assert stats["num_shards"] == 3
        assert stats["boundaries"] == [10, 20]
        assert stats["facts"] == 1
        assert len(stats["shards"]) == 3
        assert stats["shards"][0]["range"] == [NEG_INF, 10]


class TestShardedConcurrency:
    def test_parallel_writers_disjoint_shards(self):
        """Writers on different time bands proceed concurrently and the
        merged result matches the oracle."""
        sharded = ShardedTree("sum", [1000, 2000, 3000],
                              branching=4, leaf_capacity=4)
        rng = random.Random(17)
        bands = [(0, 999), (1000, 1999), (2000, 2999), (3000, 3999)]
        per_band = [
            random_facts(rng, 50, lo, hi - 60, 50) for lo, hi in bands
        ]
        barrier = threading.Barrier(len(bands), timeout=10)

        def writer(facts):
            barrier.wait()
            for value, iv in facts:
                sharded.insert(value, iv)

        threads = [
            threading.Thread(target=writer, args=(facts,))
            for facts in per_band
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        flat = [fact for facts in per_band for fact in facts]
        assert sharded.to_table() == reference.instantaneous_table(flat, "sum")
        sharded.check()


class TestShardedFaults:
    def test_crash_point_leaves_shard_state_intact(self):
        from repro.faults import FaultInjector, SimulatedCrash

        injector = FaultInjector()
        sharded = ShardedTree("sum", [100], fault_injector=injector)
        sharded.insert(3, Interval(0, 50))  # one shard touched: hit 1
        before = sharded.to_table()
        injector.crash_at("shard_apply", hit=2)
        with pytest.raises(SimulatedCrash):
            sharded.insert(9, Interval(10, 20))
        # The failed insert touched nothing: state identical, counts too.
        assert sharded.to_table() == before
        assert sharded.facts_applied == 1
        sharded.check()

    def test_per_shard_crash_point(self):
        from repro.faults import FaultInjector, SimulatedCrash

        injector = FaultInjector()
        injector.crash_at("shard_apply:1")
        sharded = ShardedTree("sum", [100], fault_injector=injector)
        sharded.insert(3, Interval(0, 50))  # shard 0 only: fine
        with pytest.raises(SimulatedCrash):
            sharded.insert(4, Interval(150, 160))  # shard 1: boom
        assert sharded.lookup(25) == 3
        assert sharded.lookup(155) == 0
