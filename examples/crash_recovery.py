#!/usr/bin/env python3
"""Crash-consistent warehouse indexes: journaling and recovery.

A warehouse keeps its SB-tree view on disk with a rollback journal.
We commit a snapshot, apply more updates, then "crash" the process
state without committing -- and show that reopening the file recovers
exactly the committed snapshot, ready for further maintenance.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro import Interval, SBTree, check_tree
from repro.storage import PagedNodeStore
from repro.workloads import PRESCRIPTIONS


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="sbtree-"), "sum_dosage.sbt")

    # ------------------------------------------------------------------
    # Build and commit a durable snapshot.
    # ------------------------------------------------------------------
    print(f"Building a journaled index at {path}")
    store = PagedNodeStore(path, "sum", buffer_capacity=64, journaled=True)
    tree = SBTree("sum", store, branching=8, leaf_capacity=8)
    for p in PRESCRIPTIONS:
        tree.insert(p.dosage, p.valid)
    store.commit()
    print(f"  committed snapshot: lookup(19) = {tree.lookup(19)}")

    # ------------------------------------------------------------------
    # Uncommitted work, then a simulated crash: dirty pages reach the
    # file, but commit() is never called.
    # ------------------------------------------------------------------
    print("\nApplying uncommitted updates ...")
    tree.insert(100, Interval(0, 1000))
    tree.insert(50, Interval(10, 20))
    print(f"  in-flight value:    lookup(19) = {tree.lookup(19)}")
    store.buffer.flush()
    store.pager._file.flush()
    print(f"  journal on disk:    {os.path.exists(path + '-journal')}")
    store.pager._file.close()  # crash: no commit, no clean close
    print("  ... crash! (process state discarded)")

    # ------------------------------------------------------------------
    # Recovery: reopening rolls back to the committed snapshot.
    # ------------------------------------------------------------------
    print("\nReopening the index file ...")
    with PagedNodeStore(path, journaled=True) as recovered_store:
        recovered = SBTree(store=recovered_store)
        print(f"  rolled back:        lookup(19) = {recovered.lookup(19)}")
        check_tree(recovered)
        print("  structural invariants: ok")
        print(f"  journal cleaned up: {not os.path.exists(path + '-journal')}")

        # The recovered tree accepts new (and this time committed) work.
        recovered.insert(5, Interval(15, 45))
        recovered_store.commit()
        print(f"  new committed work: lookup(19) = {recovered.lookup(19)}")

    print("\nDone.")


if __name__ == "__main__":
    main()
