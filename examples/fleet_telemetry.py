#!/usr/bin/env python3
"""Fleet telemetry: grouped views, arbitrary windows, history retention.

A fleet of machines reports load sessions (value = CPU load, valid
interval = session duration).  The warehouse maintains:

* a fleet-wide instantaneous load SUM,
* a per-machine grouped view (TSQL2 GROUP BY host + temporal grouping),
* a fleet-wide cumulative MAX for operator-chosen windows (MSB-tree).

Old history is then retired with ``retain_after`` -- the paper's
Section 1 notes a warehouse may not even keep the base data needed to
recompute it, so the archive produced here is the only remaining record.

Run:  python examples/fleet_telemetry.py
"""

import random

from repro import Interval, MSBTree, SBTree
from repro.relation import TemporalRelation
from repro.warehouse import ANY_WINDOW, GroupedAggregateView, TemporalWarehouse

HOSTS = ["web-1", "web-2", "db-1", "cache-1"]
DAY = 24 * 3600


def simulate(relation, days=7, seed=3):
    rng = random.Random(seed)
    for day in range(days):
        for _ in range(200):
            host = rng.choice(HOSTS)
            start = day * DAY + rng.randrange(DAY)
            duration = max(60, int(rng.expovariate(1 / 1800)))
            load = rng.randint(1, 100)
            relation.insert(load, Interval(start, start + duration), host=host)


def main() -> None:
    warehouse = TemporalWarehouse()
    sessions = warehouse.create_table("sessions")

    fleet_load = warehouse.create_view("FleetLoad", "sessions", "sum")
    per_host = warehouse.create_grouped_view(
        "LoadByHost", "sessions", "sum", key_of=lambda row: row.payload["host"]
    )
    worst = warehouse.create_view(
        "WorstLoad", "sessions", "max", window=ANY_WINDOW
    )

    print("Simulating a week of sessions for", len(HOSTS), "hosts ...")
    simulate(sessions)
    print(f"  {len(sessions)} live sessions")

    noon_day3 = 3 * DAY + 12 * 3600
    print(f"\nAt day-3 noon (t={noon_day3}):")
    print(f"  fleet-wide load SUM        : {fleet_load.value_at(noon_day3)}")
    for host, value in sorted(per_host.values_at(noon_day3).items()):
        print(f"  {host:>8} load             : {value}")
    for label, w in [("1 hour", 3600), ("1 day", DAY), ("3 days", 3 * DAY)]:
        print(f"  worst session, {label:>7} back: {worst.value_at(noon_day3, w)}")

    # ------------------------------------------------------------------
    # Retention: archive everything before day 5.
    # ------------------------------------------------------------------
    cutoff = 5 * DAY
    tree: SBTree = fleet_load.index
    before_nodes = tree.node_count()
    archive = tree.retain_after(cutoff)
    print(f"\nRetired history before day 5:")
    print(f"  archived constant intervals: {len(archive)}")
    print(f"  index nodes: {before_nodes} -> {tree.node_count()}")
    print(f"  old instants now read empty: lookup(day 1) = {tree.lookup(DAY)}")
    recent = 6 * DAY
    print(f"  recent history intact      : lookup(day 6) = {tree.lookup(recent)}")

    # The archive remains queryable as a plain table.
    mid_day2 = 2 * DAY + 12 * 3600
    print(f"  archive value at day-2 noon: {archive.value_at(mid_day2)}")


if __name__ == "__main__":
    main()
