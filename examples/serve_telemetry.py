#!/usr/bin/env python3
"""Serving fleet telemetry over the network: the sharded TCP service.

The same load-session telemetry as ``fleet_telemetry.py``, but instead
of querying the index in process, a 4-shard
:class:`~repro.sharding.ShardedTree` is served over TCP
(:mod:`repro.service`) and queried through the blocking client --
exactly what ``python -m repro serve`` does, here run in process on an
ephemeral port so the example is self-contained.

What it shows:

* sessions spanning shard boundaries are split transparently; lookups
  and range queries fan out and merge back into one step function,
* writes are group-committed (watch the batch flush counters),
* per-operation latency lands in the server's metrics registry, served
  to any client via the ``stats`` op.

Run:  python examples/serve_telemetry.py
"""

import random

from repro.service import ServerHandle, ServiceClient
from repro.sharding import ShardedTree

DAY = 24 * 3600
DAYS = 7


def simulate_sessions(rng, days=DAYS):
    """CPU load sessions: (load, start, end), many crossing midnight."""
    sessions = []
    for day in range(days):
        for _ in range(40):
            start = day * DAY + rng.randint(0, DAY - 1)
            duration = rng.randint(600, 10 * 3600)  # 10 min .. 10 h
            sessions.append((rng.randint(1, 8), start, start + duration))
    return sessions


def main():
    rng = random.Random(11)
    sessions = simulate_sessions(rng)

    # One shard per day: midnight-crossing sessions split at the cuts.
    sharded = ShardedTree("sum", num_shards=DAYS, span=(0, DAYS * DAY))
    with ServerHandle.start(sharded, batch_max=32, batch_delay=0.001) as srv:
        print(f"service up on {srv.host}:{srv.port} "
              f"({sharded.num_shards} day-shards)")
        with ServiceClient(srv.host, srv.port) as svc:
            applied = svc.batch_insert(sessions)
            print(f"ingested {applied} load sessions over {DAYS} days")

            noon_day3 = 3 * DAY + 12 * 3600
            print(f"fleet load at day-3 noon : {svc.lookup(noon_day3)}")

            # The step function around a shard boundary (midnight 3->4):
            midnight = 4 * DAY
            rows = svc.rangeq(midnight - 2 * 3600, midnight + 2 * 3600)
            print(f"load profile +/-2h around day-4 midnight "
                  f"({len(rows)} constant intervals):")
            for value, interval in rows[:6]:
                print(f"  {value:>4}  {interval}")
            if len(rows) > 6:
                print(f"  ... {len(rows) - 6} more")

            stats = svc.stats()
            shards = stats["shards"]
            print("per-shard pieces :",
                  [s["pieces"] for s in shards["shards"]])
            print(f"facts={shards['facts']} -> "
                  f"{sum(s['pieces'] for s in shards['shards'])} pieces "
                  "(midnight-crossing sessions were split)")
            flushes = stats["counters"].get("service.batch.flushes", 0)
            print(f"group commit     : {flushes} flushes for "
                  f"{stats['ops']['service.batch_insert']['count']} "
                  "write requests")
            lookup_ops = stats["ops"]["service.lookup"]
            print(f"lookup latency   : count={lookup_ops['count']} "
                  f"p95={lookup_ops['wall_us']['p95']:.0f}us")
    print("drained cleanly")


if __name__ == "__main__":
    main()
