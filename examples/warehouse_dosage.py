#!/usr/bin/env python3
"""A temporal data warehouse maintaining aggregate views incrementally.

The scenario of the paper's introduction: a warehouse stores the history
of prescriptions and keeps several temporal aggregate views fresh while
the source table keeps changing.  Views are backed by SB-trees (and an
MSB-tree) instead of materialized tables, so even insertions with very
long valid intervals are absorbed in a handful of node touches.

Also contrasts against direct materialization: the same update stream
is applied to a row-materialized view and the rows-touched counts are
compared (the paper's "more than half of SumDosage must be updated"
argument, quantified).

Run:  python examples/warehouse_dosage.py
"""

import random

from repro import Interval
from repro.warehouse import ANY_WINDOW, MaterializedView, TemporalWarehouse
from repro.workloads import PRESCRIPTIONS


def main() -> None:
    warehouse = TemporalWarehouse()
    prescriptions = warehouse.create_table("prescription")

    # Three maintained views over the same base table.
    sum_view = warehouse.create_view("SumDosage", "prescription", "sum")
    avg5_view = warehouse.create_view(
        "AvgDosage5", "prescription", "avg", window=5
    )
    cum_max = warehouse.create_view(
        "CumMaxDosage", "prescription", "max", window=ANY_WINDOW
    )

    print("Loading the Prescription table ...")
    rows = {}
    for p in PRESCRIPTIONS:
        rows[p.patient] = prescriptions.insert(p.dosage, p.valid, patient=p.patient)

    print(f"  SumDosage at day 19          : {sum_view.value_at(19)}")
    print(f"  AvgDosage5 at day 32         : {avg5_view.value_at(32):.2f}")
    print(f"  max dosage, 20-day window, day 50: {cum_max.value_at(50, 20)}")
    print(f"  max dosage, 7-day window, day 50 : {cum_max.value_at(50, 7)}")

    # ------------------------------------------------------------------
    # Source changes propagate automatically.
    # ------------------------------------------------------------------
    print("\nGill starts a long prescription <5, [15, 45)> ...")
    rows["Gill"] = prescriptions.insert(5, Interval(15, 45), patient="Gill")
    print(f"  SumDosage at day 19 is now   : {sum_view.value_at(19)}")

    print("Dan's prescription is retracted ...")
    try:
        prescriptions.delete(rows["Dan"])
    except ValueError as exc:
        # MIN/MAX aggregates are not incrementally maintainable under
        # deletions (paper, Section 3.4) -- the MAX view vetoes the
        # change.  Drop it first, then retract.
        print(f"  rejected: {exc}")
        warehouse.drop_view("CumMaxDosage")
        prescriptions.delete(rows["Dan"])
        print("  retried after dropping the MAX view: ok")
    print(f"  SumDosage at day 12 is now   : {sum_view.value_at(12)}")

    print("\nSumDosage view contents (reconstructed from the SB-tree):")
    print(sum_view.table().pretty("sum_dosage"))

    # ------------------------------------------------------------------
    # The cost argument: SB-tree vs direct materialization under a
    # stream of long-interval updates.
    # ------------------------------------------------------------------
    print("\nReplaying 500 random updates (10% long intervals) into both")
    print("an SB-tree view and a directly materialized view ...")
    rng = random.Random(7)
    direct = MaterializedView("sum")
    for value, interval in prescriptions.facts():
        direct.insert(value, interval)  # start from the current contents
    direct.rows_touched = 0
    sb_stats_before = sum_view.index.store.stats.snapshot()
    for _ in range(500):
        start = rng.randrange(0, 5000)
        length = 4000 if rng.random() < 0.1 else rng.randrange(1, 50)
        value = rng.randint(1, 9)
        prescriptions.insert(value, Interval(start, start + length))
        direct.insert(value, Interval(start, start + length))
    sb_touches = (sum_view.index.store.stats - sb_stats_before).reads
    print(f"  direct view rows touched : {direct.rows_touched}")
    print(f"  SB-tree node reads       : {sb_touches}")
    print(f"  advantage                : {direct.rows_touched / sb_touches:.1f}x")

    agree = sum_view.table() == direct.to_table().finalized(direct.spec).coalesce()
    print(f"\nBoth representations agree: {agree}")
    assert agree


if __name__ == "__main__":
    main()
