#!/usr/bin/env python3
"""SB-trees as disk-resident indices: build, close, reopen, query.

Demonstrates the storage substrate: a page file with checksummed 4 KiB
pages, a write-back LRU buffer pool, page-geometry-derived fanout, and
physical-I/O accounting.  The index is built once, the process-local
state is discarded, and the file is reopened cold to answer queries.

Run:  python examples/disk_persistence.py
"""

import os
import tempfile

from repro import Interval, SBTree
from repro.storage import PagedNodeStore
from repro.workloads import uniform


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="sbtree-"), "sum_dosage.sbt")
    n = 20_000
    facts = uniform(n, horizon=500_000, max_duration=2_000, seed=1)

    # ------------------------------------------------------------------
    # Build: fanout is derived from the page geometry, as in the paper
    # ("b and l are on the order of hundreds" for realistic page sizes).
    # ------------------------------------------------------------------
    print(f"Building an SB-tree over {n} tuples at {path} ...")
    with PagedNodeStore(path, "sum", page_size=4096, buffer_capacity=256) as store:
        tree = SBTree(
            "sum",
            store,
            branching=store.default_branching,
            leaf_capacity=store.default_leaf_capacity,
        )
        print(f"  page-derived fanout: b={tree.b}, l={tree.l}")
        for value, interval in facts:
            tree.insert(value, interval)
        store.flush()
        print(
            f"  built: height={tree.height}, nodes={store.node_count()}, "
            f"file={store.pager.page_count * 4096 / 1024:.0f} KiB"
        )
        print(
            f"  physical I/O during build: "
            f"{store.pager.stats.physical_reads} reads, "
            f"{store.pager.stats.physical_writes} writes "
            f"(buffer hit rate {store.buffer.stats.hit_rate:.1%})"
        )

    # ------------------------------------------------------------------
    # Reopen cold: the aggregate kind and fanout come from the file
    # header; queries touch only O(height) pages.
    # ------------------------------------------------------------------
    print("\nReopening the file cold (tiny 8-page buffer pool) ...")
    with PagedNodeStore(path, buffer_capacity=8) as store:
        tree = SBTree(store=store)  # kind recovered from metadata
        print(f"  recovered: kind={tree.kind}, b={tree.b}, l={tree.l}")

        t = 250_000
        store.pager.stats.reset()
        value = tree.lookup(t)
        print(
            f"  lookup({t}) = {value} "
            f"using {store.pager.stats.physical_reads} physical page reads "
            f"(height {tree.height})"
        )

        store.pager.stats.reset()
        window = Interval(t, t + 5_000)
        rows = tree.range_query(window)
        print(
            f"  range query over {window}: {len(rows)} constant intervals, "
            f"{store.pager.stats.physical_reads} physical page reads"
        )

        # Updates work on the reopened tree too.
        store.pager.stats.reset()
        tree.insert(7, Interval(100, 400_000))
        print(
            f"  one long-interval insert: "
            f"{store.pager.stats.physical_reads} reads + buffered writes"
        )
        assert tree.lookup(t) == value + 7

    print("\nDone; index file kept at", path)


if __name__ == "__main__":
    main()
