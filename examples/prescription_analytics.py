#!/usr/bin/env python3
"""Temporal analytics with the query layer (TSQL2-style grouping).

The paper frames temporal aggregates as query-language constructs
(TQuel, TSQL2): aggregates grouped over time, optionally filtered,
partitioned by attributes, or made cumulative.  This example runs those
query shapes over a prescriptions table, then materializes one query as
an incrementally maintained SB-tree view.

Run:  python examples/prescription_analytics.py
"""

from repro import Interval, TemporalQuery
from repro.relation import TemporalRelation
from repro.workloads import PRESCRIPTIONS


def main() -> None:
    prescriptions = TemporalRelation("prescription")
    for p in PRESCRIPTIONS:
        prescriptions.insert(p.dosage, p.valid, patient=p.patient)

    # ------------------------------------------------------------------
    # Temporal grouping: one row per constant interval (SumDosage).
    # ------------------------------------------------------------------
    total = TemporalQuery(prescriptions).aggregate("sum")
    print("Total daily dosage over time:")
    print(total.table().pretty("sum_dosage"))

    # ------------------------------------------------------------------
    # Filters compose; the aggregate re-groups over the surviving tuples.
    # ------------------------------------------------------------------
    heavy = total.where(lambda row: row.value >= 2)
    print("\nCounting only prescriptions of 2+ units/day:")
    print(heavy.table().pretty("sum_dosage"))

    # ------------------------------------------------------------------
    # Attribute partitioning (TSQL2 GROUP BY patient + temporal grouping).
    # ------------------------------------------------------------------
    per_patient = (
        TemporalQuery(prescriptions)
        .aggregate("sum")
        .partition_by(lambda row: row.payload["patient"])
    )
    print("\nPer-patient dosage at day 19:")
    for patient, value in per_patient.at(19).items():
        print(f"  {patient:>5}: {value}")

    # ------------------------------------------------------------------
    # Cumulative queries: the paper's AvgDosage5 as a one-liner.
    # ------------------------------------------------------------------
    avg5 = TemporalQuery(prescriptions).aggregate("avg").window(5)
    print("\nAvgDosage5 (average over prescriptions active in the last")
    print("five days), reproduced from Figure 5:")
    print(avg5.table().pretty("avg_dosage"))

    # ------------------------------------------------------------------
    # The same query, materialized: an SB-tree-backed view that stays
    # fresh as the base table changes.
    # ------------------------------------------------------------------
    view = total.materialize("SumDosage")
    print(f"\nMaterialized view answer at day 19: {view.value_at(19)}")
    prescriptions.insert(5, Interval(15, 45), patient="Gill")
    print(f"After Gill's new prescription     : {view.value_at(19)}")
    one_shot = TemporalQuery(prescriptions).aggregate("sum").at(19)
    print(f"One-shot recomputation agrees     : {one_shot}")
    assert view.value_at(19) == one_shot


if __name__ == "__main__":
    main()
