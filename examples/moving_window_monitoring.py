#!/usr/bin/env python3
"""Moving-window monitoring with *arbitrary* window offsets (Section 4).

Scenario: a service emits request sessions; each session has a latency
(the aggregated value) and an active interval.  Operators ask questions
like "average latency over sessions active in the last minute / hour /
day" and "worst latency seen in any window ending now" -- with window
sizes chosen at query time, not in advance.

* Average latency for any window: a dual SB-tree pair (Section 4.2).
* Maximum latency for any window: an MSB-tree with exact-extremum
  annotations, answering in O(h) regardless of window size (4.3).

Run:  python examples/moving_window_monitoring.py
"""

import random

from repro import DualTreeAggregate, Interval, MSBTree

MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR


def simulate_sessions(n, seed=42):
    """Synthetic request sessions over one day of (integer) seconds."""
    rng = random.Random(seed)
    sessions = []
    for _ in range(n):
        start = rng.randrange(DAY)
        duration = max(1, int(rng.expovariate(1 / 30)))  # ~30 s sessions
        latency_ms = max(1, int(rng.lognormvariate(3.6, 0.7)))
        if rng.random() < 0.01:
            latency_ms *= 20  # rare slow outliers
        sessions.append((latency_ms, Interval(start, start + duration)))
    return sessions


def main() -> None:
    sessions = simulate_sessions(5_000)
    print(f"Simulated {len(sessions)} sessions over one day.")

    avg_latency = DualTreeAggregate("avg", branching=64, leaf_capacity=64)
    max_latency = MSBTree("max", branching=64, leaf_capacity=64)
    for latency, interval in sessions:
        avg_latency.insert(latency, interval)
        max_latency.insert(latency, interval)

    now = 18 * HOUR  # "current" query time: 6 pm
    print(f"\nAt t = {now} s (6 pm), with window offsets chosen at query time:")
    header = f"{'window':>10}  {'avg latency':>12}  {'max latency':>12}"
    print(header)
    print("-" * len(header))
    for label, w in [
        ("instant", 0),
        ("1 minute", MINUTE),
        ("5 minutes", 5 * MINUTE),
        ("1 hour", HOUR),
        ("6 hours", 6 * HOUR),
    ]:
        avg = avg_latency.window_lookup_final(now, w)
        worst = max_latency.window_lookup(now, w)
        avg_text = "(no sessions)" if avg is None else f"{avg:.1f}ms"
        worst_text = "(no sessions)" if worst is None else f"{worst}ms"
        print(f"{label:>10}  {avg_text:>12}  {worst_text:>12}")

    # ------------------------------------------------------------------
    # A full time series for dashboards: the cumulative aggregate's
    # constant intervals over the afternoon, for a 5-minute window.
    # ------------------------------------------------------------------
    window = 5 * MINUTE
    afternoon = Interval(12 * HOUR, 12 * HOUR + 30 * MINUTE)
    print(f"\n5-minute moving average, first rows over {afternoon}:")
    table = avg_latency.window_query(afternoon, window).finalized(avg_latency.spec)
    for value, interval in list(table)[:8]:
        shown = "n/a" if value is None else f"{value:.1f}ms"
        print(f"  {str(interval):>18}  {shown}")

    # ------------------------------------------------------------------
    # Why the MSB-tree: O(h) window lookups at any width.
    # ------------------------------------------------------------------
    stats = max_latency.store.stats
    before = stats.snapshot()
    max_latency.window_lookup(now, 6 * HOUR)
    wide = (stats - before).reads
    before = stats.snapshot()
    max_latency.window_lookup(now, MINUTE)
    narrow = (stats - before).reads
    print(
        f"\nMSB-tree node reads: {narrow} for a 1-minute window, "
        f"{wide} for a 6-hour window (tree height {max_latency.height})."
    )


if __name__ == "__main__":
    main()
