#!/usr/bin/env python3
"""Quickstart: the paper's Prescription example, end to end.

Builds SB-tree indices over the Prescription table (Figure 1), prints
the aggregate tables of Figures 3 and 4, runs the worked lookups and
range queries from Sections 3.1-3.2, and replays the insertion/deletion
narratives of Sections 3.3-3.4.

Run:  python examples/quickstart.py
"""

from repro import Interval, SBTree
from repro.workloads import PRESCRIPTIONS


def main() -> None:
    print("Prescription base table (Figure 1):")
    for p in PRESCRIPTIONS:
        print(f"  {p.patient:>5}  dosage={p.dosage}  valid={p.valid}")

    # ------------------------------------------------------------------
    # Build one SB-tree per aggregate.  Small fanout (4) mirrors the
    # paper's figures; production trees use page-sized fanouts.
    # ------------------------------------------------------------------
    sum_tree = SBTree("sum", branching=4, leaf_capacity=4)
    avg_tree = SBTree("avg", branching=4, leaf_capacity=4)
    for p in PRESCRIPTIONS:
        sum_tree.insert(p.dosage, p.valid)
        avg_tree.insert(p.dosage, p.valid)

    print("\nSumDosage (Figure 3):")
    print(sum_tree.to_table().pretty("sum_dosage"))

    print("\nAvgDosage (cf. Figure 4; see DESIGN.md errata):")
    print(avg_tree.to_table().finalized(avg_tree.spec).coalesce().pretty("avg_dosage"))

    # ------------------------------------------------------------------
    # Point lookups and range queries (Sections 3.1 and 3.2).
    # ------------------------------------------------------------------
    print(f"\nlookup(SumDosage, 19) = {sum_tree.lookup(19)}   (paper: 6)")
    print(f"lookup(AvgDosage, 32) = {avg_tree.lookup_final(32):.2f}  (paper: 1.33)")

    print("\nrangeq(SumDosage, [14, 28)):")
    print(sum_tree.range_query(Interval(14, 28)).pretty("sum_dosage"))

    # ------------------------------------------------------------------
    # Incremental maintenance (Sections 3.3 and 3.4).
    # ------------------------------------------------------------------
    print("\nInsert <'Gill', 5, [15, 45)> ...")
    sum_tree.insert(5, Interval(15, 45))
    print(sum_tree.to_table().pretty("sum_dosage"))

    print("\nDelete it again (a deletion is a negative insertion) ...")
    sum_tree.delete(5, Interval(15, 45))
    print(sum_tree.to_table().pretty("sum_dosage"))

    print(
        f"\nTree stats: height={sum_tree.height}, nodes={sum_tree.node_count()}, "
        f"logical node reads so far={sum_tree.store.stats.reads}"
    )


if __name__ == "__main__":
    main()
